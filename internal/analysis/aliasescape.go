package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AliasEscape checks the lifetime contract of zero-copy message payloads.
// ser.DecodeArgsAlias (and the flat codecs' alias mode) hand entry methods
// []byte values that alias the delivery buffer instead of copying out of it;
// the runtime retires that buffer as soon as the entry method returns. Any
// alias that survives the return — stored in a chare field or a package
// variable, sent on a channel, captured by a goroutine — is silently
// overwritten by an unrelated frame later. The race detector only sees the
// unlucky interleavings; charmvet rejects the escape structurally.
//
// The rule runs on the shared dataflow engine. Taint sources are the
// parameters of entry methods whose types can carry an aliasing []byte
// (TypeGraph.CanAliasBytes) and the results of direct ser.DecodeArgsAlias
// calls anywhere. Taint follows value flow — slicing, type assertions,
// field/element projection, composite literals — and dies at the sanctioned
// copies: ser.Clone, bytes.Clone, a string conversion, or a byte-spread
// append (append(dst, t...) copies the bytes). Escapes are reported at the
// offending expression; same-package helpers are seen through via call
// summaries (callsum.go), so handing the alias to a local function that
// stores it is still caught.
//
// The runtime packages that implement the buffer contract (core, ser,
// transport) are exempt: they are the owner side of the lifetime rule.
// Proxy/Future/Channel sends are also safe sinks — their payloads are
// serialized (copied) on the way out.
var AliasEscape = &Analyzer{
	Name: "aliasescape",
	ID:   "CV007",
	Doc: "[]byte values aliasing a zero-copy message buffer must not outlive " +
		"the entry method; clone them (ser.Clone) before storing, sending, " +
		"or sharing them with a goroutine",
	Run: runAliasEscape,
}

// aliasExemptPkgs implement the zero-copy contract and legitimately retain
// or recycle the buffers they decode from.
var aliasExemptPkgs = map[string]bool{
	"charmgo/internal/core":      true,
	"charmgo/internal/ser":       true,
	"charmgo/internal/transport": true,
}

const aliasEscapeMsg = "%s aliases the message buffer but escapes the entry method (%s); the buffer is recycled after return and will be overwritten by an unrelated frame — keep a copy with ser.Clone"

const aliasEscapeHelperMsg = "%s aliases the message buffer but is passed to %s, which stores it beyond the call; keep a copy with ser.Clone first"

func runAliasEscape(pass *Pass) {
	if aliasExemptPkgs[pass.Pkg.Path()] {
		return
	}
	// Entry methods: alias-capable parameters are sources.
	for _, em := range pass.Eng.EntryMethods() {
		if em.decl.Body == nil {
			continue
		}
		entry := State{}
		for _, field := range em.decl.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj != nil && pass.Mod.TG.CanAliasBytes(obj.Type()) {
					entry[obj] = Fact{Pos: name.Pos()}
				}
			}
		}
		aliasFlow(pass, em.decl.Body, entry, receiverObj(pass.Info, em.decl))
	}
	// Any other function calling DecodeArgsAlias directly: the results are
	// sources even outside entry methods (generated dispatch is trusted — it
	// forwards the alias under the same contract it was given).
	for _, f := range pass.Files {
		if isGenFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isEntryDecl(pass, fd) {
				continue
			}
			if !callsDecodeAlias(pass.Info, fd.Body) {
				continue
			}
			var recv types.Object
			if fd.Recv != nil {
				recv = receiverObj(pass.Info, fd)
			}
			aliasFlow(pass, fd.Body, State{}, recv)
		}
	}
}

func isGenFile(pass *Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return len(name) >= len(GenFileName) && name[len(name)-len(GenFileName):] == GenFileName
}

func isEntryDecl(pass *Pass, fd *ast.FuncDecl) bool {
	for _, em := range pass.Eng.EntryMethods() {
		if em.decl == fd {
			return true
		}
	}
	return false
}

func callsDecodeAlias(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isFunc(calleeObject(info, call), "charmgo/internal/ser", "DecodeArgsAlias") {
				found = true
			}
		}
		return !found
	})
	return found
}

// aliasFlow runs the taint analysis over one function body. recv (may be
// nil) makes stores rooted at the receiver reportable as chare-field stores.
func aliasFlow(pass *Pass, body *ast.BlockStmt, entry State, recv types.Object) {
	info := pass.Info
	tg := pass.Mod.TG
	sums := pass.Eng.Summaries()

	// carrier reports whether expr's value may alias a tainted buffer,
	// returning the position to report. Sanitizers sever the chain; the
	// check is type-gated so scalar projections (len(t), t[0]) never carry.
	var carrier func(e ast.Expr, state State) (token.Pos, bool)
	carrier = func(e ast.Expr, state State) (token.Pos, bool) {
		e = ast.Unparen(e)
		t := info.TypeOf(e)
		if t == nil || !tg.CanAliasBytes(t) {
			return token.NoPos, false
		}
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if _, ok := state[obj]; ok {
					return x.Pos(), true
				}
			}
		case *ast.SliceExpr:
			return carrier(x.X, state)
		case *ast.IndexExpr:
			return carrier(x.X, state)
		case *ast.SelectorExpr:
			return carrier(x.X, state)
		case *ast.StarExpr:
			return carrier(x.X, state)
		case *ast.UnaryExpr:
			return carrier(x.X, state)
		case *ast.TypeAssertExpr:
			return carrier(x.X, state)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if pos, ok := carrier(el, state); ok {
					return pos, true
				}
			}
		case *ast.CallExpr:
			if isAliasSanitizer(info, x) {
				return token.NoPos, false
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(info, id) {
				// Builtin append: the destination's taint survives; a
				// byte-spread source is copied in, any other element keeps
				// its alias.
				if len(x.Args) > 0 {
					if pos, ok := carrier(x.Args[0], state); ok {
						return pos, true
					}
				}
				for _, a := range x.Args[1:] {
					if x.Ellipsis != token.NoPos && a == x.Args[len(x.Args)-1] {
						if sl, ok := info.TypeOf(a).Underlying().(*types.Slice); ok {
							if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
								continue // append(dst, t...) copies the bytes
							}
						}
					}
					if pos, ok := carrier(a, state); ok {
						return pos, true
					}
				}
				return token.NoPos, false
			}
			// A call result built from a tainted argument may alias it
			// (bytes.TrimSpace, a local trim helper): stay conservative.
			for _, a := range x.Args {
				if pos, ok := carrier(a, state); ok {
					return pos, true
				}
			}
		}
		return token.NoPos, false
	}

	// sinkRoot classifies where a non-identifier store lands: the chare
	// receiver, a package-level variable, or neither.
	sinkRoot := func(lhs ast.Expr) (string, bool) {
		root := lhs
		for {
			switch x := ast.Unparen(root).(type) {
			case *ast.SelectorExpr:
				root = x.X
			case *ast.IndexExpr:
				root = x.X
			case *ast.StarExpr:
				root = x.X
			default:
				id, ok := ast.Unparen(root).(*ast.Ident)
				if !ok {
					return "", false
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if obj == nil {
					return "", false
				}
				if recv != nil && obj == recv {
					return "stored in chare field", true
				}
				if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
					return "stored in package variable", true
				}
				return "", false
			}
		}
	}

	exprStr := func(e ast.Expr) string {
		if pos, ok := nodeIdentName(e); ok {
			return pos
		}
		return "the value"
	}

	step := func(n ast.Node, state State, report bool) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for li, lhs := range x.Lhs {
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[li]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if id, ok := lhs.(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					// A plain store to a package-level variable is a sink,
					// not a rebinding: the alias outlives every call.
					if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
						if rhs != nil {
							if pos, ok := carrier(rhs, state); ok && report {
								pass.Reportf(pos, aliasEscapeMsg, exprStr(rhs), "stored in package variable "+id.Name)
							}
						}
						continue
					}
					switch {
					case rhs != nil && isDecodeAliasCall(info, rhs) && li == 0:
						state[obj] = Fact{Pos: id.Pos()}
					case rhs != nil:
						if _, ok := carrier(rhs, state); ok && tg.CanAliasBytes(obj.Type()) {
							state[obj] = Fact{Pos: id.Pos()}
						} else {
							delete(state, obj)
						}
					}
					continue
				}
				// Store through a selector/index: a sink when rooted at the
				// receiver or a global, a propagation when rooted at a
				// tainted-capable local.
				if rhs == nil {
					continue
				}
				pos, isCarrier := carrier(rhs, state)
				if !isCarrier {
					continue
				}
				if kind, ok := sinkRoot(lhs); ok {
					if report {
						pass.Reportf(pos, aliasEscapeMsg, exprStr(rhs), kind+" "+exprText(lhs))
					}
					continue
				}
				if id, ok := rootIdent(lhs); ok {
					if obj := info.Uses[id]; obj != nil && tg.CanAliasBytes(obj.Type()) {
						state[obj] = Fact{Pos: pos}
					}
				}
			}
			recordDecodeAliasMulti(info, x, state)
		case *ast.RangeStmt:
			tainted := false
			if _, ok := carrier(x.X, state); ok {
				tainted = true
			}
			for _, obj := range assignTargets(info, x) {
				if tainted && tg.CanAliasBytes(obj.Type()) {
					state[obj] = Fact{Pos: x.Pos()}
				} else {
					delete(state, obj)
				}
			}
		case *ast.SendStmt:
			if pos, ok := carrier(x.Value, state); ok && report {
				pass.Reportf(pos, aliasEscapeMsg, exprStr(x.Value), "sent on a channel")
			}
		case *ast.GoStmt:
			if !report {
				return
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				hit := token.NoPos
				name := ""
				ast.Inspect(lit.Body, func(c ast.Node) bool {
					if hit != token.NoPos {
						return false
					}
					if id, ok := c.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							if _, tainted := state[obj]; tainted {
								hit, name = id.Pos(), id.Name
							}
						}
					}
					return true
				})
				if hit != token.NoPos {
					pass.Reportf(hit, aliasEscapeMsg, name, "shared with a goroutine")
					return
				}
			}
			for _, a := range x.Call.Args {
				if pos, ok := carrier(a, state); ok {
					pass.Reportf(pos, aliasEscapeMsg, exprStr(a), "shared with a goroutine")
					return
				}
			}
		}
		// On every non-goroutine node (including assignments and defers):
		// same-package helpers whose summary stores a parameter beyond the
		// call. Proxy/Future/Channel sends are safe sinks — serialization
		// copies the payload.
		if _, isGo := n.(*ast.GoStmt); isGo || !report {
			return
		}
		eachCall(info, n, func(call *ast.CallExpr) {
			obj := calleeObject(info, call)
			if obj != nil && isProxySend(obj) {
				return
			}
			fn2, ok := obj.(*types.Func)
			if !ok || fn2.Pkg() != pass.Pkg {
				return
			}
			vec := sums.Escapes(fn2)
			for i, pe := range vec {
				if !pe.Escaped() || i >= len(call.Args) {
					continue
				}
				if pos, ok := carrier(call.Args[i], state); ok {
					pass.Reportf(pos, aliasEscapeHelperMsg, exprStr(call.Args[i]), fn2.Name())
				}
			}
		})
	}

	Forward(pass.Eng.CFG(body), entry, step)
}

// isDecodeAliasCall reports whether e is a direct ser.DecodeArgsAlias call.
func isDecodeAliasCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isFunc(calleeObject(info, call), "charmgo/internal/ser", "DecodeArgsAlias")
}

// recordDecodeAliasMulti handles `args, n, err := ser.DecodeArgsAlias(buf)`:
// in the multi-value form only the first result carries aliases.
func recordDecodeAliasMulti(info *types.Info, as *ast.AssignStmt, state State) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 1 {
		return
	}
	if !isDecodeAliasCall(info, as.Rhs[0]) {
		return
	}
	if id, ok := as.Lhs[0].(*ast.Ident); ok {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			state[obj] = Fact{Pos: id.Pos()}
		}
	}
}

// isAliasSanitizer reports whether call copies its input out of the message
// buffer: ser.Clone, ser.CloneArgs, bytes.Clone, or a string conversion
// (handled by the type gate — string cannot alias).
func isAliasSanitizer(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil {
		return false
	}
	return isFunc(obj, "charmgo/internal/ser", "Clone") ||
		isFunc(obj, "charmgo/internal/ser", "CloneArgs") ||
		isFunc(obj, "bytes", "Clone")
}

// isBuiltin reports whether id resolves to a universe builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// rootIdent returns the root identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// nodeIdentName names an expression for diagnostics when it is (or roots at)
// a plain identifier.
func nodeIdentName(e ast.Expr) (string, bool) {
	if id, ok := rootIdent(e); ok {
		return id.Name, true
	}
	return "", false
}

// exprText renders a short description of a store target.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return exprText(x.X)
	case *ast.Ident:
		return x.Name
	}
	return "it"
}
