package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// baseline.go is the machine-readable output and suppression layer behind
// `charmvet -json`. A Finding is one diagnostic with a stable rule ID and a
// module-relative path; a Report is the JSON document charmvet emits and
// vetcheck validates. The baseline file records findings that are accepted
// for now: charmvet subtracts it before deciding its exit status, so CI can
// require "no new findings" without requiring a flag-day cleanup. Baseline
// entries deliberately omit line and column — unrelated edits above a
// finding must not churn the file — so a finding matches on (rule, file,
// message).

// ReportVersion is the schema version of charmvet's -json output. Bump only
// on incompatible changes; vetcheck rejects versions it does not know.
const ReportVersion = 1

// Finding is one diagnostic in machine-readable form.
type Finding struct {
	Rule    string `json:"rule"`    // stable ID, e.g. "CV007"
	Check   string `json:"check"`   // human name, e.g. "aliasescape"
	File    string `json:"file"`    // module-relative, forward slashes
	Line    int    `json:"line"`    // 1-based
	Col     int    `json:"col"`     // 1-based
	Message string `json:"message"`
}

// Report is the top-level -json document.
type Report struct {
	Version  int       `json:"version"`
	Findings []Finding `json:"findings"`
}

// RuleIDPattern matches well-formed rule IDs. Exported for vetcheck.
var RuleIDPattern = regexp.MustCompile(`^CV[0-9]{3}$`)

// NewFinding converts a diagnostic to a Finding, making the path relative to
// the module root (slash-separated) when possible.
func NewFinding(d Diagnostic, modRoot string) Finding {
	file := d.Pos.Filename
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil {
			file = rel
		}
	}
	rule := ""
	if a := ByName(d.Check); a != nil {
		rule = a.ID
	}
	return Finding{
		Rule:    rule,
		Check:   d.Check,
		File:    filepath.ToSlash(file),
		Line:    d.Pos.Line,
		Col:     d.Pos.Column,
		Message: d.Message,
	}
}

// BaselineEntry identifies one accepted finding. Justification is free text
// explaining why the finding is accepted rather than fixed; it is for the
// human reading the file and never matched.
type BaselineEntry struct {
	Rule          string `json:"rule"`
	File          string `json:"file"`
	Message       string `json:"message"`
	Justification string `json:"justification,omitempty"`
}

// Baseline is the committed suppression file (charmvet_baseline.json).
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// ReadBaseline loads a baseline file. A missing file is an empty baseline,
// not an error: a repo without one simply accepts nothing.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: ReportVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Version != ReportVersion {
		return nil, fmt.Errorf("%s: baseline version %d, want %d", path, b.Version, ReportVersion)
	}
	return &b, nil
}

// WriteBaseline writes the findings as a fresh baseline, deduplicated and
// sorted for stable diffs. Existing justifications for entries that are
// still live are preserved from prev (may be nil).
func WriteBaseline(path string, findings []Finding, prev *Baseline) error {
	just := map[BaselineEntry]string{}
	if prev != nil {
		for _, e := range prev.Entries {
			just[BaselineEntry{Rule: e.Rule, File: e.File, Message: e.Message}] = e.Justification
		}
	}
	seen := map[BaselineEntry]bool{}
	b := Baseline{Version: ReportVersion}
	for _, f := range findings {
		e := BaselineEntry{Rule: f.Rule, File: f.File, Message: f.Message}
		if seen[e] {
			continue
		}
		seen[e] = true
		e.Justification = just[e]
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into those not covered by the baseline (new) and
// those covered (accepted). Entry order is preserved.
func (b *Baseline) Filter(findings []Finding) (fresh, accepted []Finding) {
	keys := map[BaselineEntry]bool{}
	for _, e := range b.Entries {
		keys[BaselineEntry{Rule: e.Rule, File: e.File, Message: e.Message}] = true
	}
	for _, f := range findings {
		if keys[BaselineEntry{Rule: f.Rule, File: f.File, Message: f.Message}] {
			accepted = append(accepted, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, accepted
}

// Stale returns baseline entries that matched none of the findings: fixed
// (or renamed) violations whose suppression should be deleted so it cannot
// mask a future regression.
func (b *Baseline) Stale(findings []Finding) []BaselineEntry {
	live := map[BaselineEntry]bool{}
	for _, f := range findings {
		live[BaselineEntry{Rule: f.Rule, File: f.File, Message: f.Message}] = true
	}
	var out []BaselineEntry
	for _, e := range b.Entries {
		if !live[BaselineEntry{Rule: e.Rule, File: e.File, Message: e.Message}] {
			out = append(out, e)
		}
	}
	return out
}
