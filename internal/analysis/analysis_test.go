package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFixtures runs each analyzer over its testdata package and compares the
// diagnostics against the `// want "regex"` annotations in the fixture
// source: every want must be matched by a diagnostic on its line, and every
// diagnostic must be expected. The clean package runs the full suite and
// must stay silent — together these are the mutation check that proves each
// analyzer both fires and knows when not to.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir       string
		analyzers []*Analyzer
	}{
		{"entrysig", []*Analyzer{EntrySig}},
		{"gobsafe", []*Analyzer{GobSafe}},
		{"noblock", []*Analyzer{NoBlock}},
		{"tracehook", []*Analyzer{TraceHook}},
		{"sendown", []*Analyzer{SendOwn}},
		{"sendowninter", []*Analyzer{SendOwn}},
		{"genfresh", []*Analyzer{GenFresh}},
		{"aliasescape", []*Analyzer{AliasEscape}},
		{"migratesafe", []*Analyzer{MigrateSafe}},
		{"charerace", []*Analyzer{ChareRace}},
		{"clean", All},
	}

	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := mod.LoadDir(filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", tc.dir, err)
			}
			diags := Run(tc.analyzers, []*Package{pkg}, mod.Fset)
			wants := parseWants(t, mod, pkg)

			matched := map[string]bool{}
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				w, ok := wants[key]
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				if !w.re.MatchString(d.Message) {
					t.Errorf("diagnostic at %s does not match want %q: %s", key, w.pattern, d.Message)
				}
				matched[key] = true
			}
			for key, w := range wants {
				if !matched[key] {
					t.Errorf("missing diagnostic at %s: want %q", key, w.pattern)
				}
			}
		})
	}
}

type want struct {
	pattern string
	re      *regexp.Regexp
}

// parseWants extracts `// want "regex"` annotations, keyed by file:line.
func parseWants(t *testing.T, mod *Module, pkg *Package) map[string]want {
	t.Helper()
	wants := map[string]want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pattern, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("bad want comment %q: %v", c.Text, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pattern, err)
				}
				pos := mod.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = want{pattern, re}
			}
		}
	}
	return wants
}

// TestSuppression verifies the //charmvet:ignore escape hatch: the same
// violation with an ignore comment produces no diagnostic.
func TestSuppression(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkg, err := mod.LoadDir(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Run([]*Analyzer{NoBlock}, []*Package{pkg}, mod.Fset)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic (the unsuppressed one), got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "Unsuppressed") {
		t.Errorf("surviving diagnostic should be the unsuppressed site, got: %s", diags[0])
	}
}

// TestModuleCleanUnderCharmvet is `charmvet ./...` as a test: the repository
// itself must satisfy its own invariants.
func TestModuleCleanUnderCharmvet(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkgs, err := mod.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d); loader regression?", len(pkgs))
	}
	for _, d := range Run(All, pkgs, mod.Fset) {
		t.Errorf("charmvet: %s", d)
	}
}

// TestByName pins the CLI's -checks lookup.
func TestByName(t *testing.T) {
	for _, a := range All {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) should be nil")
	}
}

// TestLoaderPatterns pins pattern expansion: testdata is excluded from ./...
func TestLoaderPatterns(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkgs, err := mod.Load("internal/analysis/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.ImportPath, "testdata") {
			t.Errorf("testdata package leaked into pattern expansion: %s", p.ImportPath)
		}
	}
	if len(pkgs) != 1 {
		t.Errorf("internal/analysis/... should match exactly this package, got %d", len(pkgs))
	}
}
