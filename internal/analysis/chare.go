package analysis

import (
	"go/ast"
	"go/types"
)

// corePkgPath is where the runtime's Chare base type lives. The public
// charmgo.Chare is an alias of it, so embedding either resolves here.
const corePkgPath = "charmgo/internal/core"

// isChareStruct reports whether named is a chare class: a struct embedding
// core.Chare, directly or through embedded structs (reflection promotes
// through any depth, and so does the runtime's Chareable check).
func isChareStruct(named *types.Named) bool {
	return embedsChare(named, map[*types.Named]bool{})
}

func embedsChare(named *types.Named, seen map[*types.Named]bool) bool {
	if named == nil || seen[named] {
		return false
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		ft := namedOf(f.Type())
		if ft == nil {
			continue
		}
		if isNamedType(ft, corePkgPath, "Chare") {
			return true
		}
		if embedsChare(ft, seen) {
			return true
		}
	}
	return false
}

// baseMethodNames mirrors core/registry.go's baseMethods: method names the
// registry never treats as entry methods — the embedded Chare's own API
// plus the serialization/dispatch/migration hooks.
var baseMethodNames = map[string]bool{
	"GobEncode": true, "GobDecode": true, "DispatchEM": true,
	"Migrated": true, "String": true,
}

// isBaseMethod reports whether name is excluded from entry-method
// registration for the given chare type: either a fixed hook name or a
// method promoted from the core.Chare base.
func isBaseMethod(named *types.Named, name string) bool {
	if baseMethodNames[name] {
		return true
	}
	// Methods promoted from core.Chare: resolve the selection on the chare
	// type and look at where the method is actually declared.
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		sel := ms.At(i)
		fn := sel.Obj().(*types.Func)
		if fn.Name() != name {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			return false
		}
		recv := namedOf(sig.Recv().Type())
		return recv != nil && isNamedType(recv, corePkgPath, "Chare")
	}
	return false
}

// entryMethod describes one entry method declared in the analyzed package.
// Discovery lives on the Engine (engine.go, findEntryMethods) so all rules
// share one scan per package.
type entryMethod struct {
	chare *types.Named  // the chare class
	fn    *types.Func   // the method object
	decl  *ast.FuncDecl // its declaration (same package)
}
