package analysis

import (
	"go/ast"
	"go/types"
)

// callsum.go is the one-level call-summary layer: for every function or
// method declared in the analyzed package it computes, on demand, what the
// callee does with each parameter. Rules consult summaries at call sites so
// that passing a value to a same-package helper is no longer an analysis
// horizon. Summaries are intraprocedural per callee but compose through
// same-package call chains (memoized, cycle-guarded), which is the "one
// level" the engine promises: no cross-package bodies are ever loaded.
//
// Two facts are computed per parameter:
//
//   - consumed: the callee transfers ownership of the parameter's buffer
//     (passes it to SendBuf/PutBuf/xmit or a helper that does, including
//     from deferred calls and spawned goroutines — by the time the caller
//     regains control or any time after, the buffer belongs to the pool).
//   - escapes: the callee stores the parameter (or a value derived from it)
//     somewhere that outlives the call — a package-level variable, a field
//     of any object, a channel — or hands it to a spawned goroutine.
type Summaries struct {
	eng      *Engine
	consumed map[*types.Func][]bool
	escapes  map[*types.Func][]ParamEscape
	visiting map[*types.Func]bool
}

// ParamEscape says where one parameter escapes to inside the callee.
type ParamEscape struct {
	Heap      bool // stored to a global, field, map/slice element, or channel
	Goroutine bool // captured by or passed to a spawned goroutine
}

// Escaped reports whether the parameter escapes the call at all.
func (p ParamEscape) Escaped() bool { return p.Heap || p.Goroutine }

func newSummaries(eng *Engine) *Summaries {
	return &Summaries{
		eng:      eng,
		consumed: map[*types.Func][]bool{},
		escapes:  map[*types.Func][]ParamEscape{},
		visiting: map[*types.Func]bool{},
	}
}

// paramObjects resolves a declared function's parameter objects in order.
func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter: nothing can flow
			continue
		}
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// Consumed returns the per-parameter ownership-consumption vector for a
// function declared in this package, or nil when the body is unavailable
// (cross-package callee, interface method) — callers treat nil as
// "consumes nothing".
func (s *Summaries) Consumed(fn *types.Func) []bool {
	if v, ok := s.consumed[fn]; ok {
		return v
	}
	fd := s.eng.FuncDecl(fn)
	if fd == nil || fd.Body == nil {
		s.consumed[fn] = nil
		return nil
	}
	if s.visiting[fn] {
		return nil // recursion: assume nothing until the outer frame settles
	}
	s.visiting[fn] = true
	defer delete(s.visiting, fn)

	params := paramObjects(s.eng.Pkg.Info, fd)
	out := make([]bool, len(params))
	info := s.eng.Pkg.Info
	// The whole body is scanned, including deferred calls and goroutine
	// literals: a transfer from either still happens before or concurrently
	// with the caller's next use of the buffer.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, idx := range s.consumingArgs(info, call) {
			if idx >= len(call.Args) {
				continue
			}
			id, ok := ast.Unparen(call.Args[idx]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			for i, p := range params {
				if p != nil && p == obj {
					out[i] = true
				}
			}
		}
		return true
	})
	s.consumed[fn] = out
	return out
}

// consumingArgs returns the indexes of call's arguments whose ownership the
// callee takes: the transport/runtime transfer primitives, plus any
// same-package callee whose summary says it consumes that parameter.
func (s *Summaries) consumingArgs(info *types.Info, call *ast.CallExpr) []int {
	if idx, ok := ownershipArg(info, call); ok {
		return []int{idx}
	}
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != s.eng.Pkg.Types {
		return nil
	}
	vec := s.Consumed(fn)
	var out []int
	for i, c := range vec {
		if c {
			out = append(out, i)
		}
	}
	return out
}

// Escapes returns the per-parameter escape vector for a function declared in
// this package, or nil when the body is unavailable.
func (s *Summaries) Escapes(fn *types.Func) []ParamEscape {
	if v, ok := s.escapes[fn]; ok {
		return v
	}
	fd := s.eng.FuncDecl(fn)
	if fd == nil || fd.Body == nil {
		s.escapes[fn] = nil
		return nil
	}
	if s.visiting[fn] {
		return nil
	}
	s.visiting[fn] = true
	defer delete(s.visiting, fn)

	info := s.eng.Pkg.Info
	params := paramObjects(info, fd)
	out := make([]ParamEscape, len(params))

	// Stores through the method receiver outlive the call just like stores
	// through a pointer parameter: the receiver is a beyond-frame root even
	// though it has no slot in the escape vector.
	roots := params
	if recv := receiverObj(info, fd); recv != nil {
		roots = append(append([]types.Object{}, params...), recv)
	}

	// Flow-insensitive derived set: locals assigned a value mentioning a
	// tracked object become tracked too (reference-typed only). Iterated to
	// fixpoint — helpers are short, this converges in one or two rounds.
	derived := map[types.Object]int{} // object -> originating param index
	for i, p := range params {
		if p != nil && refLike(p.Type()) {
			derived[p] = i
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for li, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !refLike(obj.Type()) {
					continue
				}
				if _, tracked := derived[obj]; tracked {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[li]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if src, ok := mentionsTracked(info, rhs, derived); ok {
					derived[obj] = src
					changed = true
				}
			}
			return true
		})
	}

	mark := func(e ast.Expr, heap, gor bool) {
		if src, ok := mentionsTracked(info, e, derived); ok {
			if heap {
				out[src].Heap = true
			}
			if gor {
				out[src].Goroutine = true
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for li, lhs := range x.Lhs {
				if !storesBeyondFrame(info, lhs, roots) {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[li]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs != nil {
					mark(rhs, true, false)
				}
			}
		case *ast.SendStmt:
			mark(x.Value, true, false)
		case *ast.GoStmt:
			// Anything the spawned call mentions — in its arguments, its
			// callee expression, or a literal body — escapes to the goroutine.
			mark(x.Call.Fun, false, true)
			for _, a := range x.Call.Args {
				mark(a, false, true)
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(c ast.Node) bool {
					if id, ok := c.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							if src, tracked := derived[obj]; tracked {
								out[src].Goroutine = true
							}
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			// Propagate through same-package callees (one-level summary).
			obj := calleeObject(info, x)
			fn2, ok := obj.(*types.Func)
			if !ok || fn2.Pkg() != s.eng.Pkg.Types || fn2 == fn {
				return true
			}
			vec := s.Escapes(fn2)
			for i, pe := range vec {
				if !pe.Escaped() || i >= len(x.Args) {
					continue
				}
				mark(x.Args[i], pe.Heap, pe.Goroutine)
			}
		}
		return true
	})

	s.escapes[fn] = out
	return out
}

// mentionsTracked reports whether expr mentions a tracked object outside any
// nested function literal, returning the originating parameter index.
// Sanitizer calls (ser.Clone and friends) are skipped: their results are
// fresh memory, so a helper that clones before storing does not escape its
// parameter.
func mentionsTracked(info *types.Info, expr ast.Expr, derived map[types.Object]int) (int, bool) {
	src, found := -1, false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isAliasSanitizer(info, x) {
				return false
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if s, ok := derived[obj]; ok {
					src, found = s, true
				}
			}
		}
		return true
	})
	return src, found
}

// storesBeyondFrame reports whether assigning through lhs writes memory that
// outlives the function frame: a package-level variable, or a field/element
// reached through a selector or index whose root is a package-level variable
// or one of the function's (pointer-carrying) parameters.
func storesBeyondFrame(info *types.Info, lhs ast.Expr, params []types.Object) bool {
	root := lhs
	for {
		switch x := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root = x.X
		case *ast.IndexExpr:
			root = x.X
		case *ast.StarExpr:
			root = x.X
		default:
			id, ok := ast.Unparen(root).(*ast.Ident)
			if !ok {
				return false
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj == nil {
				return false
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return true // package-level variable
			}
			if root != lhs { // writing *through* the root, not rebinding it
				for _, p := range params {
					if p != nil && p == obj {
						return true
					}
				}
			}
			return false
		}
	}
}
