package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func fakeFinding(rule, check, file, msg string, line int) Finding {
	return Finding{Rule: rule, Check: check, File: file, Line: line, Col: 3, Message: msg}
}

// TestNewFinding pins the JSON shape: stable ID resolution, module-relative
// slash paths.
func TestNewFinding(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: filepath.Join("/mod", "internal", "core", "x.go"), Line: 7, Column: 9},
		Check:   "sendown",
		Message: "boom",
	}
	f := NewFinding(d, "/mod")
	if f.Rule != "CV005" || f.Check != "sendown" {
		t.Errorf("rule resolution: got %q/%q", f.Rule, f.Check)
	}
	if f.File != "internal/core/x.go" {
		t.Errorf("file not module-relative slash path: %q", f.File)
	}
	if f.Line != 7 || f.Col != 9 {
		t.Errorf("position: got %d:%d", f.Line, f.Col)
	}
}

// TestBaselineRoundTrip: write, read back, filter, stale detection, and
// justification preservation across a regeneration.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	old := fakeFinding("CV007", "aliasescape", "a/b.go", "kept alias", 10)
	fixed := fakeFinding("CV002", "gobsafe", "a/c.go", "hidden field", 4)
	if err := WriteBaseline(path, []Finding{old, fixed}, nil); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries: got %d, want 2", len(b.Entries))
	}

	// A baselined finding moving to another line still matches; a new one
	// does not.
	moved := old
	moved.Line = 99
	fresh := fakeFinding("CV007", "aliasescape", "a/d.go", "kept alias", 1)
	got, accepted := b.Filter([]Finding{moved, fresh})
	if len(got) != 1 || got[0] != fresh {
		t.Errorf("Filter fresh: got %v", got)
	}
	if len(accepted) != 1 || accepted[0] != moved {
		t.Errorf("Filter accepted: got %v", accepted)
	}

	// The fixed finding's entry is stale.
	stale := b.Stale([]Finding{moved})
	if len(stale) != 1 || stale[0].File != "a/c.go" {
		t.Errorf("Stale: got %v", stale)
	}

	// Regenerating keeps the justification of the surviving entry.
	// (Entries are sorted by rule, so locate them rather than assume order.)
	for i := range b.Entries {
		if b.Entries[i].Rule == "CV007" {
			b.Entries[i].Justification = "intentional: documented in DESIGN.md"
		} else {
			b.Entries[i].Justification = "goes away"
		}
	}
	if err := WriteBaseline(path, []Finding{moved}, b); err != nil {
		t.Fatalf("WriteBaseline(regen): %v", err)
	}
	b2, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline(regen): %v", err)
	}
	if len(b2.Entries) != 1 {
		t.Fatalf("regen entries: got %d, want 1", len(b2.Entries))
	}
	want := BaselineEntry{Rule: "CV007", File: "a/b.go", Message: "kept alias"}
	if b2.Entries[0].Rule != want.Rule || b2.Entries[0].File != want.File || b2.Entries[0].Message != want.Message {
		t.Errorf("regen entry: got %+v", b2.Entries[0])
	}
	if b2.Entries[0].Justification != "intentional: documented in DESIGN.md" {
		t.Errorf("justification not preserved: %q", b2.Entries[0].Justification)
	}
}

// TestReadBaselineMissing: no file means an empty baseline.
func TestReadBaselineMissing(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("ReadBaseline(missing): %v", err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("missing baseline should be empty, got %d entries", len(b.Entries))
	}
}

// TestRuleIDs pins every analyzer's stable ID: well-formed, unique, and
// resolvable both ways.
func TestRuleIDs(t *testing.T) {
	seen := map[string]string{}
	for _, a := range All {
		if !RuleIDPattern.MatchString(a.ID) {
			t.Errorf("%s: malformed ID %q", a.Name, a.ID)
		}
		if prev, dup := seen[a.ID]; dup {
			t.Errorf("ID %s assigned to both %s and %s", a.ID, prev, a.Name)
		}
		seen[a.ID] = a.Name
		if ByID(a.ID) != a {
			t.Errorf("ByID(%s) did not return %s", a.ID, a.Name)
		}
	}
}
