package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a single function body and builds its CFG with no type
// information (the no-return predicate only recognizes panic syntactically).
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body, nil)
}

// blockCalling returns the block containing a call to the named function.
func blockCalling(t *testing.T, cfg *CFG, name string) *Block {
	t.Helper()
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			// A RangeStmt loop-head node stands only for its X expression;
			// the body lives in other blocks.
			if rng, ok := n.(*ast.RangeStmt); ok {
				n = rng.X
			}
			found := false
			ast.Inspect(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(cfg *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(cfg.Blocks) > 0 {
		walk(cfg.Blocks[0])
	}
	return seen
}

func TestCFGIfElseJoin(t *testing.T) {
	cfg := buildCFG(t, `
		if cond() {
			a()
		} else {
			b()
		}
		d()
	`)
	join := blockCalling(t, cfg, "d")
	preds := 0
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			if s == join {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Errorf("join block should have 2 predecessors (then, else), got %d", preds)
	}
	if !reachable(cfg)[join] {
		t.Errorf("join block unreachable")
	}
}

func TestCFGTerminatingBranchDoesNotJoin(t *testing.T) {
	cfg := buildCFG(t, `
		if cond() {
			a()
			return
		}
		d()
	`)
	then := blockCalling(t, cfg, "a")
	join := blockCalling(t, cfg, "d")
	for _, s := range then.Succs {
		if s == join {
			t.Errorf("terminating then-branch must not flow into the join")
		}
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := buildCFG(t, `
		for i := 0; i < 10; i++ {
			a()
		}
		d()
	`)
	body := blockCalling(t, cfg, "a")
	// The body flows (through the post block) back to a lower-indexed head.
	var walk func(b *Block, seen map[*Block]bool) bool
	walk = func(b *Block, seen map[*Block]bool) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if s.Index < body.Index || walk(s, seen) {
				return true
			}
		}
		return false
	}
	if !walk(body, map[*Block]bool{}) {
		t.Errorf("loop body has no path back to the loop head")
	}
	if !reachable(cfg)[blockCalling(t, cfg, "d")] {
		t.Errorf("code after the loop must stay reachable")
	}
}

func TestCFGPanicCutsFallthrough(t *testing.T) {
	cfg := buildCFG(t, `
		a()
		panic("boom")
		d()
	`)
	if reachable(cfg)[blockCalling(t, cfg, "d")] {
		t.Errorf("code after panic must be unreachable from the entry")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildCFG(t, `
		switch x() {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		}
		d()
	`)
	c1 := blockCalling(t, cfg, "a")
	c2 := blockCalling(t, cfg, "b")
	linked := false
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(blk *Block) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		for _, s := range blk.Succs {
			if s == c2 {
				linked = true
			}
			if s != blockCalling(t, cfg, "d") {
				walk(s)
			}
		}
	}
	walk(c1)
	if !linked {
		t.Errorf("fallthrough must chain case 1 into case 2's body")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := buildCFG(t, `
	outer:
		for {
			for {
				if cond() {
					break outer
				}
				a()
			}
		}
		d()
	`)
	if !reachable(cfg)[blockCalling(t, cfg, "d")] {
		t.Errorf("break outer must make the code after the outer loop reachable")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := buildCFG(t, `
		select {
		case v := <-ch:
			a(v)
		default:
			b()
		}
		d()
	`)
	r := reachable(cfg)
	for _, name := range []string{"a", "b", "d"} {
		if !r[blockCalling(t, cfg, name)] {
			t.Errorf("select clause/join calling %s unreachable", name)
		}
	}
}

func TestCFGRangeNodeExcludesBody(t *testing.T) {
	cfg := buildCFG(t, `
		for _, v := range xs {
			a(v)
		}
		d()
	`)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if rng, ok := n.(*ast.RangeStmt); ok {
				// The loop-head node stands for "evaluate X, bind Key/Value";
				// its body must live in separate blocks, or transfer functions
				// would see it twice.
				if body := blockCalling(t, cfg, "a"); body == blk {
					t.Errorf("range body shares a block with the range head")
				}
				_ = rng
				return
			}
		}
	}
	t.Errorf("no RangeStmt loop-head node found")
}

func TestCFGEveryStmtPlaced(t *testing.T) {
	// Every leaf statement must appear in exactly one block, reachable or not.
	body := `
		a()
		if cond() {
			b()
			return
		}
		c()
		panic("x")
		d()
	`
	cfg := buildCFG(t, body)
	for _, name := range []string{"a", "b", "c", "d"} {
		n := 0
		for _, blk := range cfg.Blocks {
			for _, node := range blk.Nodes {
				count := 0
				ast.Inspect(node, func(cn ast.Node) bool {
					if call, ok := cn.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
							count++
						}
					}
					return true
				})
				n += count
			}
		}
		if n != 1 {
			t.Errorf("call %s() placed %d times, want 1", name, n)
		}
	}
	if !strings.Contains(body, "panic") {
		t.Fatal("fixture edited")
	}
}
