package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// EntrySig checks that entry-method signatures are invocable by the
// runtime's dispatchers. Entry methods are found via reflection
// (core/registry.go) and called through reflect.Value.Call with arguments
// decoded by internal/ser, so the compiler never sees the call: a variadic
// method, a channel-typed parameter, or a value receiver all compile and
// then fail (or silently lose state) at runtime.
var EntrySig = &Analyzer{
	Name: "entrysig",
	ID:   "CV001",
	Doc: "entry methods must have dispatcher-invocable signatures: pointer receiver, " +
		"no variadics, serializable parameter types, at most one result",
	Run: runEntrySig,
}

func runEntrySig(pass *Pass) {
	for _, em := range pass.Eng.EntryMethods() {
		sig := em.fn.Type().(*types.Signature)
		name := fmt.Sprintf("%s.%s", em.chare.Obj().Name(), em.fn.Name())

		if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
			pass.Reportf(em.decl.Name.Pos(),
				"entry method %s has a value receiver: state mutations are applied to a copy and lost; use a pointer receiver", name)
		}
		if sig.Variadic() {
			pass.Reportf(em.decl.Name.Pos(),
				"entry method %s is variadic: reflect dispatch passes the final parameter as a slice and the call panics; take an explicit slice parameter", name)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if bad, path := unserializable(p.Type()); bad != "" {
				pass.Reportf(paramPos(em.decl, i),
					"entry method %s parameter %d (%s) contains %s%s: it cannot cross the wire (internal/ser has no encoding for it)",
					name, i, types.TypeString(p.Type(), types.RelativeTo(pass.Pkg)), bad, path)
			}
		}
		if sig.Results().Len() > 1 {
			pass.Reportf(em.decl.Name.Pos(),
				"entry method %s returns %d values: the dispatcher delivers only the first to the caller's future; return one value (or a struct)",
				name, sig.Results().Len())
		}
	}
}

// paramPos returns the AST position of the i-th parameter of a method
// declaration (grouped parameters like "a, b int" share one field), falling
// back to the method name.
func paramPos(decl *ast.FuncDecl, i int) token.Pos {
	if decl.Type.Params == nil {
		return decl.Name.Pos()
	}
	n := 0
	for _, field := range decl.Type.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // unnamed parameter
		}
		if i < n+names {
			return field.Pos()
		}
		n += names
	}
	return decl.Name.Pos()
}

// unserializable walks t looking for types the codec cannot move between
// nodes: channels, functions, and unsafe pointers. It returns the offending
// kind and a short field path, or ("", "") when t is fine. Interface types
// are allowed (the gob fallback handles registered concrete types —
// gobsafe's territory), and types defined by the runtime itself are trusted
// (the runtime re-binds them on arrival).
func unserializable(t types.Type) (kind, path string) {
	return unserializableWalk(t, "", map[types.Type]bool{})
}

func unserializableWalk(t types.Type, path string, seen map[types.Type]bool) (string, string) {
	if seen[t] {
		return "", ""
	}
	seen[t] = true
	if named := namedOf(t); named != nil {
		tn := named.Obj()
		if tn.Pkg() != nil && tn.Pkg().Path() == corePkgPath {
			return "", "" // runtime types (Proxy, Future, ...) are rebound on arrival
		}
		if hasMethod(named, "GobEncode") || hasMethod(named, "MarshalBinary") {
			return "", "" // custom wire representation
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return "a channel", path
	case *types.Signature:
		return "a function value", path
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "an unsafe.Pointer", path
		}
	case *types.Pointer:
		return unserializableWalk(u.Elem(), path, seen)
	case *types.Slice:
		return unserializableWalk(u.Elem(), path, seen)
	case *types.Array:
		return unserializableWalk(u.Elem(), path, seen)
	case *types.Map:
		if kind, p := unserializableWalk(u.Key(), path, seen); kind != "" {
			return kind, p
		}
		return unserializableWalk(u.Elem(), path, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue // gob skips it; gobsafe reports the truncation
			}
			if kind, p := unserializableWalk(f.Type(), path+"."+f.Name(), seen); kind != "" {
				return kind, p
			}
		}
	}
	return "", ""
}

// hasMethod reports whether *named has a method with the given name
// (declared or promoted).
func hasMethod(named *types.Named, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
