package analysis

import (
	"go/ast"
	"go/types"
)

// ChareRace checks the concurrency contract of entry methods: all of a
// chare's state is mutated only from its PE's scheduler goroutine, which is
// what lets entry methods read and write fields without locks. A goroutine
// launched inside an entry method breaks that contract the moment it touches
// the receiver or anything reference-like reachable from it — the goroutine
// runs concurrently with every later entry method of the same chare. The
// sanctioned pattern is to copy the values the goroutine needs, let it
// compute, and deliver results back through a Future/Channel Send (which
// re-enters the scheduler).
//
// The rule runs on the shared dataflow engine: the receiver is the taint
// source, assignments propagate taint into reference-like locals (aliases of
// chare state), and a `go` statement that captures a tainted value — in a
// closure body, an argument, or a bound method value — is reported. Passing
// a tainted value to a same-package helper whose call summary says it hands
// the parameter to a goroutine (callsum.go) is reported at the call site.
var ChareRace = &Analyzer{
	Name: "charerace",
	ID:   "CV009",
	Doc: "goroutines launched in entry methods must not capture the receiver " +
		"or aliases of chare state: they race with later entry methods",
	Run: runChareRace,
}

const chareRaceGoMsg = "entry method %s launches a goroutine capturing %s, which aliases chare state; chare fields are only safe on the PE scheduler — copy the values the goroutine needs and deliver results with a Future/Channel Send"

const chareRaceHelperMsg = "entry method %s passes %s, which aliases chare state, to %s, which hands it to a goroutine; chare fields are only safe on the PE scheduler — copy the values instead"

func runChareRace(pass *Pass) {
	sums := pass.Eng.Summaries()
	for _, em := range pass.Eng.EntryMethods() {
		if em.decl.Body == nil {
			continue
		}
		recv := receiverObj(pass.Info, em.decl)
		if recv == nil {
			continue // unnamed receiver: nothing can be captured
		}
		name := em.chare.Obj().Name() + "." + em.fn.Name()

		// carrier reports whether expr's value aliases chare state: the
		// receiver itself, a tainted local, or a projection (field, index,
		// slice, dereference) of one — provided the projected value is
		// reference-like, so plain value copies (c.counter) stay legal.
		var carrier func(e ast.Expr, state State) (*ast.Ident, bool)
		carrier = func(e ast.Expr, state State) (*ast.Ident, bool) {
			e = ast.Unparen(e)
			t := pass.Info.TypeOf(e)
			if t == nil || !refLike(t) || isCoreHandle(t) {
				return nil, false
			}
			switch x := e.(type) {
			case *ast.Ident:
				if obj := pass.Info.Uses[x]; obj != nil {
					if _, ok := state[obj]; ok {
						return x, true
					}
				}
			case *ast.SelectorExpr:
				return carrier(x.X, state)
			case *ast.IndexExpr:
				return carrier(x.X, state)
			case *ast.SliceExpr:
				return carrier(x.X, state)
			case *ast.StarExpr:
				return carrier(x.X, state)
			case *ast.UnaryExpr:
				if x.Op.String() == "&" {
					// &c.field aliases chare state even when the field value
					// itself is a plain scalar.
					if id, ok := carrier(x.X, state); ok {
						return id, true
					}
					return chareRoot(pass.Info, x.X, state)
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if id, ok := carrier(el, state); ok {
						return id, true
					}
				}
			}
			return nil, false
		}

		step := func(n ast.Node, state State, report bool) {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for li, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					var rhs ast.Expr
					if len(x.Rhs) == len(x.Lhs) {
						rhs = x.Rhs[li]
					} else if len(x.Rhs) == 1 {
						rhs = x.Rhs[0]
					}
					if rhs == nil {
						continue
					}
					if _, ok := carrier(rhs, state); ok {
						state[obj] = Fact{Pos: id.Pos()}
					} else {
						delete(state, obj) // rebound to something chare-free
					}
				}
			case *ast.RangeStmt:
				tainted := false
				if _, ok := carrier(x.X, state); ok {
					tainted = true
				}
				for _, obj := range assignTargets(pass.Info, x) {
					if tainted && refLike(obj.Type()) {
						state[obj] = Fact{Pos: x.Pos()}
					} else {
						delete(state, obj)
					}
				}
			case *ast.GoStmt:
				if !report {
					return
				}
				if id, ok := goCaptures(pass.Info, x, state, carrier); ok {
					pass.Reportf(id.Pos(), chareRaceGoMsg, name, describeCapture(id, recv))
				}
			}
			// On every non-goroutine node: same-package helpers that leak a
			// parameter to a goroutine (one-level call summaries).
			if _, isGo := n.(*ast.GoStmt); isGo || !report {
				return
			}
			eachCall(pass.Info, n, func(call *ast.CallExpr) {
				fn2, ok := calleeObject(pass.Info, call).(*types.Func)
				if !ok || fn2.Pkg() != pass.Pkg {
					return
				}
				vec := sums.Escapes(fn2)
				for i, pe := range vec {
					if !pe.Goroutine || i >= len(call.Args) {
						continue
					}
					if id, ok := carrier(call.Args[i], state); ok {
						pass.Reportf(id.Pos(), chareRaceHelperMsg, name, describeCapture(id, recv), fn2.Name())
					}
				}
			})
		}

		entry := State{recv: {Pos: em.decl.Pos()}}
		Forward(pass.Eng.CFG(em.decl.Body), entry, step)
	}
}

// goCaptures reports whether the go statement captures a tainted value: in a
// closure body (any mention races), in an argument or callee expression
// evaluated at launch but retained by the goroutine (reference-like values
// only), or as the bound receiver of a method value.
func goCaptures(info *types.Info, g *ast.GoStmt, state State, carrier func(ast.Expr, State) (*ast.Ident, bool)) (*ast.Ident, bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		var hit *ast.Ident
		ast.Inspect(lit.Body, func(c ast.Node) bool {
			if hit != nil {
				return false
			}
			if id, ok := c.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, tainted := state[obj]; tainted {
						hit = id
					}
				}
			}
			return true
		})
		if hit != nil {
			return hit, true
		}
	} else if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		// go c.work() / go c.field.work(): the method's receiver is bound at
		// launch and escapes with the goroutine. Runtime handles (Proxy,
		// Future, Channel) are exempt: Send/Call re-enter the scheduler and
		// are the sanctioned way back in.
		if t := info.TypeOf(sel.X); t != nil && !isCoreHandle(t) {
			if id, ok := chareRoot(info, sel.X, state); ok {
				return id, true
			}
		}
	}
	for _, a := range g.Call.Args {
		if id, ok := carrier(a, state); ok {
			return id, true
		}
	}
	if id, ok := carrier(g.Call.Fun, state); ok {
		return id, true
	}
	return nil, false
}

// chareRoot resolves the root identifier of a selector/index chain and
// reports whether it is tainted, regardless of the projected value's type —
// used where the chain itself (not its value) escapes, like a bound method
// receiver or &c.field.
func chareRoot(info *types.Info, e ast.Expr, state State) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if _, ok := state[obj]; ok {
					return x, true
				}
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

func describeCapture(id *ast.Ident, recv types.Object) string {
	if id.Name == recv.Name() {
		return "the receiver " + id.Name
	}
	return id.Name
}

// isCoreHandle reports whether t is (or points to) one of the runtime's
// shareable handle types: values built to cross goroutines, whose Send/Call
// methods re-enter the scheduler rather than touching chare state directly.
func isCoreHandle(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == corePkgPath
}

// receiverObj resolves the declared receiver variable of a method, or nil.
func receiverObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}
