package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// typegraph.go is the module-wide type-graph cache shared by the structural
// rules: gobsafe's hidden-field walk and migratesafe's migratability walk
// both traverse the same field graphs, so their verdicts are memoized per
// type on the ModuleFacts every pass already shares. The cache is sound to
// share across packages because verdicts depend only on type identity.
type TypeGraph struct {
	hidden map[types.Type]hiddenRes
	mig    map[types.Type][]MigIssue
	inMig  map[types.Type]bool
	canByt map[types.Type]bool
	inByt  map[types.Type]bool
}

func newTypeGraph() *TypeGraph {
	return &TypeGraph{
		hidden: map[types.Type]hiddenRes{},
		mig:    map[types.Type][]MigIssue{},
		inMig:  map[types.Type]bool{},
		canByt: map[types.Type]bool{},
		inByt:  map[types.Type]bool{},
	}
}

type hiddenRes struct {
	named *types.Named
	field string
	done  bool
}

// HiddenFields walks t and returns the first reachable struct type carrying
// an unexported field, with the field name. Runtime types and types with
// custom marshalling are trusted. Results are memoized per type.
func (tg *TypeGraph) HiddenFields(t types.Type) (*types.Named, string) {
	return tg.hiddenWalk(t, map[types.Type]bool{})
}

func (tg *TypeGraph) hiddenWalk(t types.Type, seen map[types.Type]bool) (*types.Named, string) {
	if r, ok := tg.hidden[t]; ok && r.done {
		return r.named, r.field
	}
	if seen[t] {
		return nil, ""
	}
	seen[t] = true
	named, field := tg.hiddenWalk1(t, seen)
	tg.hidden[t] = hiddenRes{named, field, true}
	return named, field
}

func (tg *TypeGraph) hiddenWalk1(t types.Type, seen map[types.Type]bool) (*types.Named, string) {
	named := namedOf(t)
	if named != nil {
		tn := named.Obj()
		if tn.Pkg() == nil || tn.Pkg().Path() == corePkgPath {
			return nil, ""
		}
		if hasMethod(named, "GobEncode") || hasMethod(named, "MarshalBinary") {
			return nil, ""
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return tg.hiddenWalk(u.Elem(), seen)
	case *types.Slice:
		return tg.hiddenWalk(u.Elem(), seen)
	case *types.Array:
		return tg.hiddenWalk(u.Elem(), seen)
	case *types.Map:
		if off, f := tg.hiddenWalk(u.Key(), seen); off != nil {
			return off, f
		}
		return tg.hiddenWalk(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() && named != nil {
				return named, f.Name()
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			if off, fn := tg.hiddenWalk(u.Field(i).Type(), seen); off != nil {
				return off, fn
			}
		}
	}
	return nil, ""
}

// MigIssue is one reason a chare type cannot migrate: a field (named by its
// path from the chare struct) whose type the migration codec either rejects
// at runtime (exported chan/func/sync primitive — gob errors at the first
// checkpoint) or silently zeroes (unexported — the chare resumes with the
// field's zero value on the destination PE).
type MigIssue struct {
	Path   string // ".Conn.mu" style field path from the chare struct
	Kind   string // human description of the offending type
	Silent bool   // unexported somewhere on the path: dropped, not rejected
}

// pe-local instrumentation/runtime packages whose handles must never ride a
// migration blob: they are bound to the origin node's sockets, ring buffers
// and counters.
var peLocalPkgs = map[string]bool{
	"charmgo/internal/transport": true,
	"charmgo/internal/trace":     true,
	"charmgo/internal/metrics":   true,
}

// MigIssues walks t's field graph and returns every distinct non-migratable
// field, memoized per type. The walk trusts core runtime types (the runtime
// re-binds proxies/futures on arrival, rebind.go) and types with custom gob
// or binary marshalling — with one exception: a *core.Runtime field is
// PE-local by definition and always reported.
func (tg *TypeGraph) MigIssues(t types.Type) []MigIssue {
	if r, ok := tg.mig[t]; ok {
		return r
	}
	if tg.inMig[t] {
		return nil // cycle: the first frame owns the verdict
	}
	tg.inMig[t] = true
	r := tg.migWalk(t, "", false)
	delete(tg.inMig, t)
	tg.mig[t] = r
	return r
}

func (tg *TypeGraph) migWalk(t types.Type, path string, silent bool) []MigIssue {
	if isNamedType(t, corePkgPath, "Runtime") {
		return []MigIssue{{path, "a *core.Runtime handle (PE-local)", silent}}
	}
	if named := namedOf(t); named != nil {
		tn := named.Obj()
		if tn.Pkg() != nil {
			switch {
			case peLocalPkgs[tn.Pkg().Path()]:
				return []MigIssue{{path, fmt.Sprintf("a %s.%s handle (PE-local)", lastSeg(tn.Pkg().Path()), tn.Name()), silent}}
			case tn.Pkg().Path() == "sync":
				return []MigIssue{{path, "a sync." + tn.Name(), silent}}
			case tn.Pkg().Path() == corePkgPath:
				return nil // rebound on arrival (rebind.go)
			}
		}
		if hasMethod(named, "GobEncode") || hasMethod(named, "MarshalBinary") {
			return nil // custom wire representation
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return []MigIssue{{path, "a channel", silent}}
	case *types.Signature:
		return []MigIssue{{path, "a function value", silent}}
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return []MigIssue{{path, "an unsafe.Pointer", silent}}
		}
	case *types.Pointer:
		return tg.migWalkSub(u.Elem(), path, silent)
	case *types.Slice:
		return tg.migWalkSub(u.Elem(), path, silent)
	case *types.Array:
		return tg.migWalkSub(u.Elem(), path, silent)
	case *types.Map:
		out := tg.migWalkSub(u.Key(), path, silent)
		return append(out, tg.migWalkSub(u.Elem(), path, silent)...)
	case *types.Struct:
		var out []MigIssue
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if isNamedType(f.Type(), corePkgPath, "Chare") && f.Embedded() {
				continue // the embedded base itself is runtime-managed
			}
			out = append(out, tg.migWalkSub(f.Type(), path+"."+f.Name(), silent || !f.Exported())...)
		}
		return out
	}
	return nil
}

// migWalkSub recurses through MigIssues' memo so shared subtrees are walked
// once, then re-prefixes the returned paths and silence.
func (tg *TypeGraph) migWalkSub(t types.Type, path string, silent bool) []MigIssue {
	sub := tg.MigIssues(t)
	if len(sub) == 0 {
		return nil
	}
	out := make([]MigIssue, len(sub))
	for i, is := range sub {
		out[i] = MigIssue{path + is.Path, is.Kind, silent || is.Silent}
	}
	return out
}

// CanAliasBytes reports whether a value of type t can carry a []byte that
// aliases a decode buffer: []byte itself, containers reaching one, and
// interface types (which may hold one). Strings and scalar types cannot —
// conversions copy.
func (tg *TypeGraph) CanAliasBytes(t types.Type) bool {
	if v, ok := tg.canByt[t]; ok {
		return v
	}
	if tg.inByt[t] {
		return false // cycle: a recursive type aliases via the outer frame
	}
	tg.inByt[t] = true
	v := tg.canAliasBytes1(t)
	delete(tg.inByt, t)
	tg.canByt[t] = v
	return v
}

func (tg *TypeGraph) canAliasBytes1(t types.Type) bool {
	// Runtime handle types (Proxy, Future, Channel, ...) carry routing
	// state, never payload bytes: the runtime rebinds them rather than
	// aliasing decode buffers through them.
	if named := namedOf(t); named != nil {
		if tn := named.Obj(); tn.Pkg() != nil && tn.Pkg().Path() == corePkgPath {
			return false
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			return true
		}
		return tg.CanAliasBytes(u.Elem())
	case *types.Array:
		return tg.CanAliasBytes(u.Elem())
	case *types.Pointer:
		return tg.CanAliasBytes(u.Elem())
	case *types.Interface:
		return true
	case *types.Map:
		return tg.CanAliasBytes(u.Key()) || tg.CanAliasBytes(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if tg.CanAliasBytes(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// refLike reports whether values of t share referenced memory when copied:
// pointers, slices, maps, channels, functions, interfaces, and aggregates
// containing one. Used by the escape summaries and the charerace taint.
func refLike(t types.Type) bool { return refLikeWalk(t, map[types.Type]bool{}) }

func refLikeWalk(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Array:
		return refLikeWalk(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLikeWalk(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

func lastSeg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
