package analysis

// All is the full charmvet suite, in report order. IDs are stable: new rules
// append, existing rules never renumber.
var All = []*Analyzer{
	EntrySig,    // CV001
	GobSafe,     // CV002
	NoBlock,     // CV003
	TraceHook,   // CV004
	SendOwn,     // CV005
	GenFresh,    // CV006
	AliasEscape, // CV007
	MigrateSafe, // CV008
	ChareRace,   // CV009
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ByID returns the analyzer with the given stable ID, or nil.
func ByID(id string) *Analyzer {
	for _, a := range All {
		if a.ID == id {
			return a
		}
	}
	return nil
}
