package analysis

// All is the full charmvet suite, in report order.
var All = []*Analyzer{
	EntrySig,
	GobSafe,
	NoBlock,
	TraceHook,
	SendOwn,
	GenFresh,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}
