package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenParity asserts that moving the six original rules onto the
// shared dataflow engine changed no diagnostic: testdata/golden/<rule>.golden
// was captured from the pre-engine implementations over the same fixture
// packages, and the migrated rules must reproduce it byte for byte —
// positions, ordering, and message text included.
//
// The interprocedural shapes the engine newly catches live in their own
// fixture package (testdata/src/sendowninter), so this comparison stays
// meaningful: on the original fixtures, old and new must agree exactly.
func TestGoldenParity(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	cases := []struct {
		name string
		a    *Analyzer
	}{
		{"entrysig", EntrySig},
		{"gobsafe", GobSafe},
		{"noblock", NoBlock},
		{"tracehook", TraceHook},
		{"sendown", SendOwn},
		{"genfresh", GenFresh},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, err := mod.LoadDir(filepath.Join("testdata", "src", tc.name))
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", tc.name, err)
			}
			var sb strings.Builder
			for _, d := range Run([]*Analyzer{tc.a}, []*Package{pkg}, mod.Fset) {
				s := d.String()
				// Goldens store module-root-relative paths so they are
				// machine-independent.
				if rel, err := filepath.Rel(mod.Root, d.Pos.Filename); err == nil {
					s = rel + strings.TrimPrefix(s, d.Pos.Filename)
				}
				sb.WriteString(s + "\n")
			}
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden: %v", err)
			}
			if sb.String() != string(golden) {
				t.Errorf("diagnostics diverge from the pre-engine golden\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
			}
		})
	}
}
