package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Module is a loaded Go module: its packages parsed and type-checked from
// source with no toolchain invocation and no dependencies outside the
// standard library. It exists because the x/tools packages loader is not
// available offline; the subset implemented here is exactly what the
// charmvet analyzers need:
//
//   - module packages are fully type-checked (function bodies included) and
//     loading fails loudly on any error, since analyzers cannot run soundly
//     over broken types;
//   - standard-library dependencies are type-checked from GOROOT source with
//     IgnoreFuncBodies (only their API surface matters) and with cgo
//     disabled, so packages like net resolve to their pure-Go variants.
type Module struct {
	Fset *token.FileSet
	Root string // absolute path of the directory containing go.mod
	Path string // module path declared in go.mod

	goroot  string
	ctxt    build.Context
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// Package is one loaded package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	InModule   bool
}

// LoadModule locates the enclosing module of dir and prepares a loader.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Module{
		Fset:    token.NewFileSet(),
		Root:    root,
		Path:    modPath,
		goroot:  runtime.GOROOT(),
		ctxt:    ctxt,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves package patterns to loaded module packages. Supported
// patterns: "./..." (every package under the module root), and directory
// paths relative to the module root or absolute. Directories named testdata
// or vendor, and directories starting with "." or "_", are never matched by
// "./...".
func (m *Module) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := m.walkDirs(m.Root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, ds...)
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(m.Root, strings.TrimSuffix(pat, "/..."))
			ds, err := m.walkDirs(base)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, ds...)
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(m.Root, d)
			}
			dirs = append(dirs, filepath.Clean(d))
		}
	}
	var out []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		pkg, err := m.LoadDir(dir)
		if err != nil {
			if _, none := err.(*build.NoGoError); none {
				continue // directory without buildable Go files
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// walkDirs lists candidate package directories under base.
func (m *Module) walkDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		matches, _ := filepath.Glob(filepath.Join(path, "*.go"))
		if len(matches) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// LoadDir loads and type-checks the package in dir (which may live outside
// the module tree, e.g. a testdata fixture); its imports resolve through the
// module loader. Type errors in dir or in any module package it pulls in are
// returned as errors.
func (m *Module) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ip := m.dirImportPath(abs)
	if pkg, ok := m.pkgs[ip]; ok {
		return pkg, nil
	}
	return m.loadDir(abs, ip, true)
}

// dirImportPath synthesizes the import path for a directory: module-relative
// when inside the module, the cleaned path otherwise (fixtures).
func (m *Module) dirImportPath(abs string) string {
	if rel, err := filepath.Rel(m.Root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return m.Path
		}
		return m.Path + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// Import implements types.Importer, resolving module-internal paths against
// the module root and everything else against GOROOT/src.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	var dir string
	inModule := false
	switch {
	case path == m.Path:
		dir, inModule = m.Root, true
	case strings.HasPrefix(path, m.Path+"/"):
		dir, inModule = filepath.Join(m.Root, strings.TrimPrefix(path, m.Path+"/")), true
	default:
		dir = filepath.Join(m.goroot, "src", filepath.FromSlash(path))
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("analysis: cannot resolve import %q (not in module %s, not in GOROOT)", path, m.Path)
		}
	}
	pkg, err := m.loadDir(dir, path, inModule)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (m *Module) loadDir(dir, importPath string, strict bool) (*Package, error) {
	m.loading[importPath] = true
	defer delete(m.loading, importPath)

	bp, err := m.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if !strict {
				continue
			}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, &build.NoGoError{Dir: dir}
	}

	var typeErrs []error
	cfg := &types.Config{
		Importer:    m,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	var info *types.Info
	if strict {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
	} else {
		// Standard-library dependency: the API surface is all that matters.
		cfg.IgnoreFuncBodies = true
	}
	tpkg, _ := cfg.Check(importPath, m.Fset, files, info)
	if strict && len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		InModule:   strict,
	}
	m.pkgs[importPath] = pkg
	return pkg, nil
}
