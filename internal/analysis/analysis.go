// Package analysis implements charmvet, a static checker for the CharmGo
// programming-model invariants that the Go compiler cannot see (DESIGN.md
// §3.3). Entry methods are invoked via reflection, their arguments
// round-trip through internal/ser's codec (gob fallback), and every chare
// shares its PE's scheduler goroutine — so a signature the dispatcher cannot
// call, a struct gob silently truncates, or a blocking call in an entry
// method all compile cleanly and fail (or worse, silently corrupt state) at
// runtime. Each analyzer in this package turns one such invariant into a
// compile-time-style diagnostic.
//
// The package is self-hosting on the standard library: go/parser, go/ast,
// go/types and a small module loader (loader.go) stand in for x/tools,
// which is unavailable offline.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check. ID is the stable machine-readable identifier
// surfaced by `charmvet -json` and matched by the suppression baseline; it
// never changes once assigned, even if the rule is renamed.
type Analyzer struct {
	Name string
	ID   string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer's view of one package. Eng is the package's shared
// engine (CFGs, entry methods, call summaries), built once and handed to
// every analyzer over the package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Mod      *ModuleFacts
	Eng      *Engine

	diags      *[]Diagnostic
	suppressed map[suppressKey]bool
}

type suppressKey struct {
	file  string
	line  int
	check string
}

// Reportf records a diagnostic unless the line (or the line above it)
// carries a `//charmvet:ignore <check>` comment.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if p.suppressed[suppressKey{position.Filename, line, p.Analyzer.Name}] ||
			p.suppressed[suppressKey{position.Filename, line, "*"}] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// collectSuppressions scans comments for charmvet:ignore directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[suppressKey]bool {
	sup := map[suppressKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "charmvet:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				checks := strings.Fields(rest)
				if len(checks) == 0 {
					sup[suppressKey{pos.Filename, pos.Line, "*"}] = true
					continue
				}
				for _, chk := range checks {
					sup[suppressKey{pos.Filename, pos.Line, chk}] = true
				}
			}
		}
	}
	return sup
}

// ModuleFacts carries cross-package knowledge shared by every pass:
// which concrete types are registered with the gob fallback anywhere in the
// module, which types are registered as chares (the runtime registers
// those with gob itself), and the module-wide type-graph cache the
// structural rules (gobsafe, migratesafe) share.
type ModuleFacts struct {
	// GobRegistered holds types.TypeString keys (pointer stripped) of every
	// type passed to ser.RegisterType or gob.Register in non-test module
	// code.
	GobRegistered map[string]bool
	// ChareRegistered holds type strings of prototypes passed to
	// Runtime.Register (or pool-style wrappers calling it).
	ChareRegistered map[string]bool
	// TG memoizes field-graph walks (hidden fields, migratability, alias
	// reachability) per type across the whole run.
	TG *TypeGraph
}

// Run executes analyzers over packages, sharing one ModuleFacts, and
// returns the diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package, fset *token.FileSet) []Diagnostic {
	facts := gatherModuleFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		sup := collectSuppressions(fset, pkg.Files)
		eng := newEngine(pkg, facts)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Mod:        facts,
				Eng:        eng,
				diags:      &diags,
				suppressed: sup,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// gatherModuleFacts pre-scans every package for codec/chare registrations.
func gatherModuleFacts(pkgs []*Package) *ModuleFacts {
	facts := &ModuleFacts{
		GobRegistered:   map[string]bool{},
		ChareRegistered: map[string]bool{},
		TG:              newTypeGraph(),
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				obj := calleeObject(pkg.Info, call)
				if obj == nil {
					return true
				}
				switch {
				case isFunc(obj, "charmgo/internal/ser", "RegisterType"),
					isFunc(obj, "encoding/gob", "Register"):
					if t := pkg.Info.TypeOf(call.Args[0]); t != nil {
						facts.GobRegistered[typeKey(t)] = true
					}
				case obj.Name() == "Register" && isMethodOf(obj, "charmgo/internal/core", "Runtime"):
					if t := pkg.Info.TypeOf(call.Args[0]); t != nil {
						key := typeKey(t)
						facts.ChareRegistered[key] = true
						facts.GobRegistered[key] = true
					}
				}
				return true
			})
		}
	}
	return facts
}

// ---- shared type/AST helpers ----

// calleeObject resolves the object a call expression invokes, looking
// through selector and plain-identifier callees.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// isFunc reports whether obj is the package-level function pkgPath.name.
func isFunc(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isMethodOf reports whether obj is a method whose receiver's base type is
// the named type pkgPath.typeName.
func isMethodOf(obj types.Object, pkgPath, typeName string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	tn := named.Obj()
	return tn.Name() == typeName && tn.Pkg() != nil && tn.Pkg().Path() == pkgPath
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind pointers/aliases) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	tn := named.Obj()
	return tn.Name() == name && tn.Pkg() != nil && tn.Pkg().Path() == pkgPath
}

// typeKey is the registration-matching key for a type: its full type string
// with any top-level pointer stripped (gob registers &T{} and T
// equivalently for our purposes).
func typeKey(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, nil)
}

// walkStack traverses f, calling fn with each node and the stack of its
// ancestors (outermost first, excluding n itself).
func walkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
