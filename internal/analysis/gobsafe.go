package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GobSafe checks the two ways encoding/gob silently breaks the message
// model. Entry-method arguments that are not one of internal/ser's direct
// encodings travel through the gob fallback inside an interface{} slot, so:
//
//  1. struct types reachable from entry-method parameters must not carry
//     unexported fields — gob drops them without error, and the receiver
//     observes zero values;
//  2. named struct types passed as Call/CallRet/Send arguments must be
//     gob-registered somewhere in the module (ser.RegisterType or
//     gob.Register) — decoding into interface{} needs the concrete type's
//     name registered, and the failure surfaces only at the first cross-node
//     send.
//
// Runtime types (core.Proxy & co.) are exempt: they intentionally carry
// node-local unexported state that the runtime re-binds on arrival, and the
// runtime registers them itself. So are types with custom Gob/Binary
// marshalling, and chare prototypes (Runtime.Register gob-registers them).
var GobSafe = &Analyzer{
	Name: "gobsafe",
	ID:   "CV002",
	Doc: "message struct types must survive the gob fallback: no unexported fields, " +
		"and gob-registered when passed as interface{} arguments",
	Run: runGobSafe,
}

func runGobSafe(pass *Pass) {
	// Part 1: unexported fields in structs reachable from entry-method
	// parameters.
	for _, em := range pass.Eng.EntryMethods() {
		sig := em.fn.Type().(*types.Signature)
		name := fmt.Sprintf("%s.%s", em.chare.Obj().Name(), em.fn.Name())
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if offender, field := pass.Mod.TG.HiddenFields(p.Type()); offender != nil {
				pass.Reportf(paramPos(em.decl, i),
					"entry method %s parameter %d reaches struct %s whose unexported field %q is silently dropped by gob; export the field, add GobEncode/GobDecode, or keep the type node-local",
					name, i, types.TypeString(offender, types.RelativeTo(pass.Pkg)), field)
			}
		}
	}

	// Part 2: unregistered named struct types passed as proxy-call
	// arguments.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.Info, call)
			if obj == nil || !isProxySend(obj) {
				return true
			}
			// Skip the leading method-name argument of Call/CallRet.
			args := call.Args
			if obj.Name() == "Call" || obj.Name() == "CallRet" {
				if len(args) < 2 {
					return true
				}
				args = args[1:]
			}
			for _, arg := range args {
				t := pass.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				named := namedOf(t)
				if named == nil || !gobNeedsRegistration(named) {
					continue
				}
				key := typeKey(t)
				if pass.Mod.GobRegistered[key] || pass.Mod.ChareRegistered[key] {
					continue
				}
				pass.Reportf(arg.Pos(),
					"%s is passed as an interface{} argument but never gob-registered: cross-node decode will fail at runtime; call ser.RegisterType(%s{}) on every node",
					key, types.TypeString(named, types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
}

// isProxySend reports whether obj is one of core.Proxy's argument-carrying
// send methods, or Future.Send / Channel.Send (which also ship interface{}
// payloads).
func isProxySend(obj types.Object) bool {
	switch obj.Name() {
	case "Call", "CallRet":
		return isMethodOf(obj, corePkgPath, "Proxy")
	case "Insert", "InsertAt":
		return isMethodOf(obj, corePkgPath, "Proxy")
	case "Send":
		return isMethodOf(obj, corePkgPath, "Future") || isMethodOf(obj, corePkgPath, "Channel")
	}
	return false
}

// gobNeedsRegistration reports whether a named type needs an explicit gob
// registration to travel inside interface{}: named struct types without
// custom marshalling, outside the runtime package.
func gobNeedsRegistration(named *types.Named) bool {
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Path() == corePkgPath {
		return false
	}
	// Named struct types are the ones gob must resolve by registered name
	// when decoding into interface{}; custom marshalling does not lift that
	// requirement. Basic-kinded named types decode through ser's direct tags.
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// The unexported-field walk itself lives on the shared type-graph cache
// (typegraph.go, TypeGraph.HiddenFields) so gobsafe and migratesafe pay for
// each type's field graph once per run.
