// Package golden is the generator's golden-file fixture: chare types whose
// entry methods cover the full codec-kind matrix — typed scalars and slices,
// core.Proxy/core.Future references, flat structs (nested, with unexported
// fields), untyped interface{} passthrough, gob-fallback types, a returning
// method, and a variadic method (not dispatchable, codec only).
package golden

import "charmgo/internal/core"

// Params exercises the flat struct codec, including an unexported field
// (generated same-package codecs carry it; gob would drop it).
type Params struct {
	N     int
	Scale float64
	Name  string
	Grid  []int
	seed  int64
}

// Vec nests one flat struct inside another.
type Vec struct {
	Xs  []float64
	Tag Params
}

// Labels is a named slice: kept on the generic path (named types encode
// under their own identity).
type Labels []string

// Node is the fixture chare.
type Node struct {
	core.Chare
	Total int
}

func (n *Node) Scalars(b bool, i int, i64 int64, f float64, s string) {}

func (n *Node) Slices(bs []byte, fs []float64, f32s []float32, i64s []int64, i32s []int32, is []int) {
}

func (n *Node) Refs(p core.Proxy, f core.Future) {}

func (n *Node) Structs(p Params, v Vec) {}

func (n *Node) Mixed(m map[string]int, x any, ls Labels) {}

func (n *Node) Ret(x int) int { return x + n.Total }

func (n *Node) Variadic(xs ...int) {}
