// Package gen emits charmgo_gen.go binding files: per-chare typed dispatch
// and per-signature argument codecs that replace the runtime's reflect.Call
// and gob fallback on the remote-invoke hot path. It is the repo's analog of
// Charm++'s charmxi-generated stubs and of the Charm4Py evaluation's move
// from interpreted to generated method invocation (PAPERS.md, Fink 2021).
//
// For each package that defines chare types (structs embedding core.Chare),
// Generate produces one file containing:
//
//   - a dispatch function per chare: a flat switch over method ids that
//     type-asserts the receiver and arguments and calls the entry method
//     directly — no reflect.Value, no coercion;
//   - an encoder and decoder per entry method, writing the ser wire format
//     through typed appenders/readers (byte-identical with the generic
//     reflective path, so bound and unbound nodes interoperate);
//   - flat struct codecs for same-package struct parameters, registered with
//     ser so even the generic path stops gob-encoding them;
//   - an init() that registers everything with core.RegisterGenerated.
//
// Every generated construct declines (returns ok=false) when its type
// assertions fail, and the runtime falls back to the reflective path — so a
// dynamic-mode caller relying on argument coercion still works, just slower.
//
// The file also carries one "// charmgo:manifest" comment per chare type
// recording the entry-method signature set it was generated from; the
// charmvet genfresh rule recomputes that string from source and flags drift.
package gen

import (
	"bytes"
	"fmt"
	"go/format"
	"go/types"
	"sort"
	"strings"

	"charmgo/internal/analysis"
)

// GenFileName is the filename bindings are written to in each package,
// shared with the genfresh vet rule.
const GenFileName = analysis.GenFileName

// kind classifies a parameter or field type for codec purposes.
type kind int

const (
	kOther kind = iota // codec via AppendAny/Any (may still reach gob)
	kBool
	kInt
	kInt64
	kFloat64
	kString
	kBytes
	kF64s
	kF32s
	kI64s
	kI32s
	kInts
	kProxy
	kFuture
	kFlat // same-package struct with a generated flat codec
	kAny  // interface{}: passed through untyped, still zero-reflection
)

// typed reports whether the kind has a fully typed wire path (no gob).
func (k kind) typed() bool { return k != kOther }

type generator struct {
	pkg     *analysis.Package
	chares  []analysis.ChareInfo
	imports map[string]string      // import path -> local alias
	order   []string               // import paths in first-use order
	flats   map[*types.Named]bool  // same-package structs with flat codecs
	flatQ   []*types.Named         // emission order
	body    bytes.Buffer
}

// Generate returns the generated bindings file for pkg, or nil if the
// package defines no chare types.
func Generate(pkg *analysis.Package) ([]byte, error) {
	chares := analysis.Chares(pkg)
	if len(chares) == 0 {
		return nil, nil
	}
	g := &generator{
		pkg:     pkg,
		chares:  chares,
		imports: map[string]string{},
		flats:   map[*types.Named]bool{},
	}
	// core is always used (RegisterGenerated in init); ser is used by every
	// codec, which exists whenever any chare has an entry method.
	g.importAlias(analysis.CorePkgPath, "core")
	for _, ci := range chares {
		if len(ci.Methods) > 0 {
			g.importAlias("charmgo/internal/ser", "ser")
			break
		}
	}
	for _, ci := range chares {
		g.emitChare(ci)
	}
	g.emitFlatHelpers()
	g.emitInit()
	return g.render()
}

// pkgKey is the registration key prefix: what reflect.Type.PkgPath() will
// report at runtime — "main" for main packages, the import path otherwise.
func (g *generator) pkgKey() string {
	if g.pkg.Types.Name() == "main" {
		return "main"
	}
	return g.pkg.Types.Path()
}

// importAlias records an import and returns the local name to qualify with.
func (g *generator) importAlias(path, base string) string {
	if a, ok := g.imports[path]; ok {
		return a
	}
	alias := base
	taken := func(name string) bool {
		for _, a := range g.imports {
			if a == name {
				return true
			}
		}
		// Don't shadow the package being generated into.
		return name == g.pkg.Types.Name()
	}
	for i := 2; taken(alias); i++ {
		alias = fmt.Sprintf("%s%d", base, i)
	}
	g.imports[path] = alias
	g.order = append(g.order, path)
	return alias
}

// qual is the types.TypeString qualifier: empty for the generated package,
// an import alias for everything else.
func (g *generator) qual(p *types.Package) string {
	if p == nil || p == g.pkg.Types {
		return ""
	}
	return g.importAlias(p.Path(), p.Name())
}

// goType renders t as Go syntax valid inside the generated file.
func (g *generator) goType(t types.Type) string {
	return types.TypeString(t, g.qual)
}

// nameable reports whether t can be written down in the generated package:
// every named type it mentions is either local or exported.
func (g *generator) nameable(t types.Type) bool {
	ok := true
	var walk func(types.Type, int)
	seen := map[types.Type]bool{}
	walk = func(t types.Type, depth int) {
		if !ok || depth > 16 || seen[t] {
			return
		}
		seen[t] = true
		switch u := t.(type) {
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() != nil && obj.Pkg() != g.pkg.Types && !obj.Exported() {
				ok = false
				return
			}
			for i := 0; i < u.TypeArgs().Len(); i++ {
				walk(u.TypeArgs().At(i), depth+1)
			}
		case *types.Pointer:
			walk(u.Elem(), depth+1)
		case *types.Slice:
			walk(u.Elem(), depth+1)
		case *types.Array:
			walk(u.Elem(), depth+1)
		case *types.Map:
			walk(u.Key(), depth+1)
			walk(u.Elem(), depth+1)
		case *types.Chan:
			walk(u.Elem(), depth+1)
		case *types.Signature:
			for i := 0; i < u.Params().Len(); i++ {
				walk(u.Params().At(i).Type(), depth+1)
			}
			for i := 0; i < u.Results().Len(); i++ {
				walk(u.Results().At(i).Type(), depth+1)
			}
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				walk(u.Field(i).Type(), depth+1)
			}
		case *types.Interface:
			for i := 0; i < u.NumMethods(); i++ {
				walk(u.Method(i).Type(), depth+1)
			}
		}
	}
	walk(t, 0)
	return ok
}

func isCoreNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == analysis.CorePkgPath && obj.Name() == name
}

// classify maps a type to its codec kind. Same-package structs are probed
// (and queued) for flat codec generation.
func (g *generator) classify(t types.Type) kind {
	if isCoreNamed(t, "Proxy") {
		return kProxy
	}
	if isCoreNamed(t, "Future") {
		return kFuture
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if _, isNamed := t.(*types.Named); isNamed {
			// Named scalars (type Mass float64) reach the generic path as
			// their named type and gob-encode; keep that behavior.
			return kOther
		}
		switch u.Kind() {
		case types.Bool:
			return kBool
		case types.Int:
			return kInt
		case types.Int64:
			return kInt64
		case types.Float64:
			return kFloat64
		case types.String:
			return kString
		}
	case *types.Slice:
		if _, isNamed := t.(*types.Named); isNamed {
			return kOther
		}
		if eb, ok := u.Elem().(*types.Basic); ok {
			if _, en := u.Elem().(*types.Named); !en {
				switch eb.Kind() {
				case types.Byte:
					return kBytes
				case types.Float64:
					return kF64s
				case types.Float32:
					return kF32s
				case types.Int64:
					return kI64s
				case types.Int32:
					return kI32s
				case types.Int:
					return kInts
				}
			}
		}
	case *types.Interface:
		if u.Empty() {
			return kAny
		}
	case *types.Struct:
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() == g.pkg.Types {
			if g.markFlat(n) {
				return kFlat
			}
		}
	}
	return kOther
}

// markFlat decides (and memoizes) whether a same-package struct gets a
// generated flat codec: every field, exported or not, must itself be flat-
// codable. Unexported fields are fine — the generated file lives in the same
// package — and unlike gob they survive the wire.
func (g *generator) markFlat(n *types.Named) bool {
	if ok, seen := g.flats[n]; seen {
		return ok
	}
	g.flats[n] = false // cycle guard; structs cannot truly contain themselves
	st := n.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		k := g.classify(st.Field(i).Type())
		if !k.typed() || k == kAny {
			return false
		}
	}
	g.flats[n] = true
	g.flatQ = append(g.flatQ, n)
	return true
}

func (g *generator) flatName(n *types.Named) string {
	return g.pkgKey() + "." + n.Obj().Name()
}

func (g *generator) pf(format string, a ...any) {
	fmt.Fprintf(&g.body, format, a...)
}

// appendExpr renders "dst = <append of src>" for an argument position.
func (g *generator) appendExpr(k kind, n *types.Named, src string) string {
	switch k {
	case kBool:
		return "ser.AppendBool(dst, " + src + ")"
	case kInt:
		return "ser.AppendInt(dst, " + src + ")"
	case kInt64:
		return "ser.AppendInt64(dst, " + src + ")"
	case kFloat64:
		return "ser.AppendFloat64(dst, " + src + ")"
	case kString:
		return "ser.AppendString(dst, " + src + ")"
	case kBytes:
		return "ser.AppendBytes(dst, " + src + ")"
	case kF64s:
		return "ser.AppendF64s(dst, " + src + ")"
	case kF32s:
		return "ser.AppendF32s(dst, " + src + ")"
	case kI64s:
		return "ser.AppendI64s(dst, " + src + ")"
	case kI32s:
		return "ser.AppendI32s(dst, " + src + ")"
	case kInts:
		return "ser.AppendInts(dst, " + src + ")"
	case kProxy:
		return "core.AppendProxyArg(dst, " + src + ")"
	case kFuture:
		return "core.AppendFutureArg(dst, " + src + ")"
	case kFlat:
		return "charmgogenAppend" + n.Obj().Name() + "(dst, " + src + ")"
	}
	panic("gen: no append expression for kind")
}

// fieldAppendExpr is appendExpr for flat struct fields: slices use the
// nil-preserving variants.
func (g *generator) fieldAppendExpr(k kind, n *types.Named, src string) string {
	switch k {
	case kBytes:
		return "ser.AppendBytesOrNil(dst, " + src + ")"
	case kF64s:
		return "ser.AppendF64sOrNil(dst, " + src + ")"
	case kF32s:
		return "ser.AppendF32sOrNil(dst, " + src + ")"
	case kI64s:
		return "ser.AppendI64sOrNil(dst, " + src + ")"
	case kI32s:
		return "ser.AppendI32sOrNil(dst, " + src + ")"
	case kInts:
		return "ser.AppendIntsOrNil(dst, " + src + ")"
	}
	return g.appendExpr(k, n, src)
}

// readExpr renders the typed read for an argument position.
func (g *generator) readExpr(k kind, n *types.Named) string {
	switch k {
	case kBool:
		return "d.Bool()"
	case kInt:
		return "d.Int()"
	case kInt64:
		return "d.Int64()"
	case kFloat64:
		return "d.Float64()"
	case kString:
		return "d.Str()"
	case kBytes:
		return "d.Bytes()"
	case kF64s:
		return "d.F64s()"
	case kF32s:
		return "d.F32s()"
	case kI64s:
		return "d.I64s()"
	case kI32s:
		return "d.I32s()"
	case kInts:
		return "d.Ints()"
	case kProxy:
		return "core.ReadProxyArg(&d)"
	case kFuture:
		return "core.ReadFutureArg(&d)"
	case kFlat:
		return "charmgogenRead" + n.Obj().Name() + "(&d)"
	}
	panic("gen: no read expression for kind")
}

func (g *generator) fieldReadExpr(k kind, n *types.Named, dec string) string {
	switch k {
	case kBytes:
		return dec + ".BytesOrNil()"
	case kF64s:
		return dec + ".F64sOrNil()"
	case kF32s:
		return dec + ".F32sOrNil()"
	case kI64s:
		return dec + ".I64sOrNil()"
	case kI32s:
		return dec + ".I32sOrNil()"
	case kInts:
		return dec + ".IntsOrNil()"
	case kProxy:
		return "core.ReadProxyArg(" + dec + ")"
	case kFuture:
		return "core.ReadFutureArg(" + dec + ")"
	case kFlat:
		return "charmgogenRead" + n.Obj().Name() + "(" + dec + ")"
	case kBool:
		return dec + ".Bool()"
	case kInt:
		return dec + ".Int()"
	case kInt64:
		return dec + ".Int64()"
	case kFloat64:
		return dec + ".Float64()"
	case kString:
		return dec + ".Str()"
	}
	panic("gen: no field read expression for kind")
}

type param struct {
	k kind
	n *types.Named // set for kFlat
	t types.Type
}

// methodParams classifies a method's parameters. dispatchable reports
// whether a typed dispatch case can be emitted (nameable types, no variadic,
// at most one result).
func (g *generator) methodParams(fn *types.Func) (ps []param, dispatchable bool) {
	sig := fn.Type().(*types.Signature)
	dispatchable = !sig.Variadic() && sig.Results().Len() <= 1
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		k := g.classify(t)
		var n *types.Named
		if k == kFlat {
			n = t.(*types.Named)
		}
		if !g.nameable(t) {
			dispatchable = false
		}
		ps = append(ps, param{k: k, n: n, t: t})
	}
	return ps, dispatchable
}

func (g *generator) emitChare(ci analysis.ChareInfo) {
	tn := ci.Name()
	g.pf("// %s bindings: dispatch and per-method argument codecs.\n\n", tn)

	// Dispatch function.
	g.pf("func charmgogenDispatch%s(obj any, id int, args []any) (any, bool) {\n", tn)
	g.pf("\tself, ok := obj.(*%s)\n\tif !ok {\n\t\treturn nil, false\n\t}\n", tn)
	g.pf("\tswitch id {\n")
	for id, fn := range ci.Methods {
		ps, dispatchable := g.methodParams(fn)
		if !dispatchable {
			continue
		}
		sig := fn.Type().(*types.Signature)
		g.pf("\tcase %d: // %s\n", id, fn.Name())
		g.pf("\t\tif len(args) != %d {\n\t\t\treturn nil, false\n\t\t}\n", len(ps))
		var callArgs []string
		for i, p := range ps {
			if p.k == kAny {
				callArgs = append(callArgs, fmt.Sprintf("args[%d]", i))
				continue
			}
			g.pf("\t\ta%d, ok%d := args[%d].(%s)\n", i, i, i, g.goType(p.t))
			g.pf("\t\tif !ok%d {\n\t\t\treturn nil, false\n\t\t}\n", i)
			callArgs = append(callArgs, fmt.Sprintf("a%d", i))
		}
		call := fmt.Sprintf("self.%s(%s)", fn.Name(), strings.Join(callArgs, ", "))
		if sig.Results().Len() == 1 {
			g.pf("\t\treturn %s, true\n", call)
		} else {
			g.pf("\t\t%s\n\t\treturn nil, true\n", call)
		}
	}
	g.pf("\t}\n\treturn nil, false\n}\n\n")

	// Per-method codecs.
	for _, fn := range ci.Methods {
		ps, _ := g.methodParams(fn)
		g.emitEncoder(tn, fn, ps)
		g.emitDecoder(tn, fn, ps)
	}
}

// encodable reports whether an encoder argument needs a type assertion
// before its typed appender (kAny and kOther go through AppendAny untyped).
func assertable(p param) bool { return p.k != kAny && p.k != kOther }

func (g *generator) emitEncoder(tn string, fn *types.Func, ps []param) {
	name := fmt.Sprintf("charmgogenEnc%s%s", tn, fn.Name())
	g.pf("func %s(dst []byte, args []any) ([]byte, bool) {\n", name)
	g.pf("\tif len(args) != %d {\n\t\treturn dst, false\n\t}\n", len(ps))
	hasAny := false
	for i, p := range ps {
		if !assertable(p) {
			hasAny = true
			continue
		}
		if !g.nameable(p.t) {
			// Cannot type-assert; fall back entirely.
			hasAny = true
			continue
		}
		g.pf("\ta%d, ok%d := args[%d].(%s)\n", i, i, i, g.goType(p.t))
		g.pf("\tif !ok%d {\n\t\treturn dst, false\n\t}\n", i)
	}
	if hasAny {
		g.pf("\tstart := len(dst)\n")
	}
	g.pf("\tdst = ser.AppendCount(dst, %d)\n", len(ps))
	for i, p := range ps {
		if assertable(p) && g.nameable(p.t) {
			g.pf("\tdst = %s\n", g.appendExpr(p.k, p.n, fmt.Sprintf("a%d", i)))
		} else {
			g.pf("\tif out, err := ser.AppendAny(dst, args[%d]); err != nil {\n", i)
			g.pf("\t\treturn dst[:start], false\n\t} else {\n\t\tdst = out\n\t}\n")
		}
	}
	g.pf("\treturn dst, true\n}\n\n")
}

func (g *generator) emitDecoder(tn string, fn *types.Func, ps []param) {
	name := fmt.Sprintf("charmgogenDec%s%s", tn, fn.Name())
	g.pf("func %s(data []byte, alias bool) ([]any, int, bool) {\n", name)
	g.pf("\td := ser.NewDec(data, alias)\n")
	g.pf("\tif d.Count() != %d {\n\t\treturn nil, 0, false\n\t}\n", len(ps))
	for i, p := range ps {
		if assertable(p) && g.nameable(p.t) {
			g.pf("\ta%d := %s\n", i, g.readExpr(p.k, p.n))
		} else {
			g.pf("\ta%d := d.Any()\n", i)
		}
	}
	g.pf("\tif !d.Ok() {\n\t\treturn nil, 0, false\n\t}\n")
	var elems []string
	for i := range ps {
		elems = append(elems, fmt.Sprintf("a%d", i))
	}
	g.pf("\treturn []any{%s}, d.Used(), true\n}\n\n", strings.Join(elems, ", "))
}

// emitFlatHelpers writes append/read functions for every same-package struct
// queued by classification. The queue can grow while iterating (nested
// structs discovered during field classification are appended).
func (g *generator) emitFlatHelpers() {
	for qi := 0; qi < len(g.flatQ); qi++ {
		n := g.flatQ[qi]
		tn := n.Obj().Name()
		st := n.Underlying().(*types.Struct)
		wire := g.flatName(n)
		g.pf("// Flat codec for %s (wire name %q).\n\n", tn, wire)

		g.pf("func charmgogenFields%s(dst []byte, v %s) []byte {\n", tn, tn)
		g.pf("\tdst = ser.AppendCount(dst, %d)\n", st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			k := g.classify(f.Type())
			var fn *types.Named
			if k == kFlat {
				fn = f.Type().(*types.Named)
			}
			g.pf("\tdst = %s\n", g.fieldAppendExpr(k, fn, "v."+f.Name()))
		}
		g.pf("\treturn dst\n}\n\n")

		g.pf("func charmgogenAppend%s(dst []byte, v %s) []byte {\n", tn, tn)
		g.pf("\treturn charmgogenFields%s(ser.AppendFlatHeader(dst, %q), v)\n}\n\n", tn, wire)

		g.pf("func charmgogenReadFields%s(d *ser.Dec) %s {\n", tn, tn)
		g.pf("\tvar v %s\n", tn)
		g.pf("\tif d.Count() != %d {\n\t\td.Abort(\"%s field count\")\n\t\treturn v\n\t}\n", st.NumFields(), tn)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			k := g.classify(f.Type())
			var fn *types.Named
			if k == kFlat {
				fn = f.Type().(*types.Named)
			}
			g.pf("\tv.%s = %s\n", f.Name(), g.fieldReadExpr(k, fn, "d"))
		}
		g.pf("\treturn v\n}\n\n")

		g.pf("func charmgogenRead%s(d *ser.Dec) %s {\n", tn, tn)
		g.pf("\tif !d.FlatHeader(%q) {\n\t\treturn %s{}\n\t}\n", wire, tn)
		g.pf("\treturn charmgogenReadFields%s(d)\n}\n\n", tn)
	}
}

func (g *generator) emitInit() {
	g.pf("func init() {\n")
	for _, n := range g.flatQ {
		tn := n.Obj().Name()
		g.pf("\tser.RegisterFlat(%q, %s{},\n", g.flatName(n), tn)
		g.pf("\t\tfunc(dst []byte, v any) ([]byte, bool) {\n")
		g.pf("\t\t\tx, ok := v.(%s)\n\t\t\tif !ok {\n\t\t\t\treturn dst, false\n\t\t\t}\n", tn)
		g.pf("\t\t\treturn charmgogenFields%s(dst, x), true\n\t\t},\n", tn)
		g.pf("\t\tfunc(d *ser.Dec) (any, bool) {\n")
		g.pf("\t\t\tv := charmgogenReadFields%s(d)\n\t\t\treturn v, d.Ok()\n\t\t})\n", tn)
	}
	for _, ci := range g.chares {
		tn := ci.Name()
		names := ci.MethodNames()
		g.pf("\tcore.RegisterGenerated(%q, &core.GenBinding{\n", g.pkgKey()+"."+tn)
		g.pf("\t\tType:     %q,\n", tn)
		g.pf("\t\tMethods:  []string{%s},\n", quoteList(names))
		g.pf("\t\tDispatch: charmgogenDispatch%s,\n", tn)
		g.pf("\t\tEnc: []func([]byte, []any) ([]byte, bool){\n")
		for _, fn := range ci.Methods {
			g.pf("\t\t\tcharmgogenEnc%s%s,\n", tn, fn.Name())
		}
		g.pf("\t\t},\n")
		g.pf("\t\tDec: []func([]byte, bool) ([]any, int, bool){\n")
		for _, fn := range ci.Methods {
			g.pf("\t\t\tcharmgogenDec%s%s,\n", tn, fn.Name())
		}
		g.pf("\t\t},\n\t})\n")
	}
	g.pf("}\n")
}

func quoteList(ss []string) string {
	qs := make([]string, len(ss))
	for i, s := range ss {
		qs[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(qs, ", ")
}

// render assembles the final file: header, manifests, imports, body.
func (g *generator) render() ([]byte, error) {
	var out bytes.Buffer
	out.WriteString("// Code generated by charmgo gen. DO NOT EDIT.\n")
	out.WriteString("//\n")
	out.WriteString("// Typed dispatch and argument codecs for this package's chare types.\n")
	out.WriteString("// Regenerate with `make gen` after changing entry-method signatures;\n")
	out.WriteString("// the charmvet genfresh rule flags staleness from these manifests:\n")
	out.WriteString("//\n")
	for _, ci := range g.chares {
		fmt.Fprintf(&out, "// %s%s\n", analysis.ManifestPrefix, analysis.Manifest(ci))
	}
	out.WriteString("\n")
	fmt.Fprintf(&out, "package %s\n\n", g.pkg.Types.Name())
	out.WriteString("import (\n")
	paths := append([]string(nil), g.order...)
	sort.Strings(paths)
	for _, p := range paths {
		alias := g.imports[p]
		base := p[strings.LastIndex(p, "/")+1:]
		if alias == base {
			fmt.Fprintf(&out, "\t%q\n", p)
		} else {
			fmt.Fprintf(&out, "\t%s %q\n", alias, p)
		}
	}
	out.WriteString(")\n\n")
	out.Write(g.body.Bytes())
	src, err := format.Source(out.Bytes())
	if err != nil {
		// Return the unformatted source in the error for debuggability.
		return nil, fmt.Errorf("gen: formatting failed (%v); generated source:\n%s", err, out.Bytes())
	}
	return src, nil
}
