package metrics

import (
	"io"
	"net/http"
	"testing"

	"charmgo/internal/leakcheck"
)

// TestServerCloseNoGoroutineLeak verifies the debug HTTP endpoint reaps its
// serving goroutine (and any request handlers) on Close.
func TestServerCloseNoGoroutineLeak(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	reg.Counter("leak_test_total", "leak test counter").Inc()
	srv, err := Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Error("empty /metrics response")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
