package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"charmgo/internal/leakcheck"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test", "quantile test")
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	// 100 observations of 100: every quantile lands in bucket [64,128).
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if q := h.Quantile(p); q < 64 || q > 128 {
			t.Errorf("Quantile(%v) = %v, want within [64,128]", p, q)
		}
	}
	// Quantiles are monotone in p and exact at bucket boundaries when the
	// rank falls on one.
	h2 := reg.Histogram("q_test2", "quantile test")
	for i := 0; i < 50; i++ {
		h2.Observe(10) // bucket [8,16)
	}
	for i := 0; i < 50; i++ {
		h2.Observe(1000) // bucket [512,1024)
	}
	p50, p99 := h2.Quantile(0.5), h2.Quantile(0.99)
	if p50 > 16 {
		t.Errorf("bimodal p50 = %v, want <= 16", p50)
	}
	if p99 < 512 || p99 > 1024 {
		t.Errorf("bimodal p99 = %v, want in [512,1024]", p99)
	}
	if p99 < p50 {
		t.Errorf("quantiles not monotone: p50 %v > p99 %v", p50, p99)
	}
	// Out-of-range p clamps instead of panicking.
	if q := h2.Quantile(-1); q != h2.Quantile(0) {
		t.Errorf("Quantile(-1) = %v, want clamp to p=0", q)
	}
	if q := h2.Quantile(2); math.IsNaN(q) {
		t.Error("Quantile(2) = NaN")
	}

	// Zero and negative observations stay in bucket 0 -> quantile 0.
	h3 := reg.Histogram("q_test3", "quantile test")
	h3.Observe(0)
	h3.Observe(-5)
	if got := h3.Quantile(0.99); got != 0 {
		t.Errorf("non-positive-only Quantile = %v, want 0", got)
	}
}

func TestWriteTextQuantileLines(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("charmgo_batch_bytes{node=\"0\"}", "flush sizes")
	h.Observe(100)
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"charmgo_batch_bytes_p50{node=\"0\"}",
		"charmgo_batch_bytes_p99{node=\"0\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// fakeIntro is a minimal IntrospectSource whose bodies are distinguishable.
type fakeIntro struct{ lbCalls sync.Map }

func (f *fakeIntro) WriteSnapshotJSON(w io.Writer) error {
	_, err := io.WriteString(w, `{"nodes":1,"totalPEs":2,"node":[]}`)
	return err
}

func (f *fakeIntro) WriteTraceWindow(w io.Writer, window time.Duration) error {
	_, err := fmt.Fprintf(w, `{"traceEvents":[],"window":%q}`, window)
	return err
}

func (f *fakeIntro) TriggerLB(w io.Writer) error {
	f.lbCalls.Store(time.Now().UnixNano(), true)
	_, err := io.WriteString(w, `{"triggered":[]}`)
	return err
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeIntrospectEndpoints(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, nil, &fakeIntro{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/introspect"); code != 200 || !strings.Contains(body, `"nodes":1`) {
		t.Errorf("/introspect = %d %q", code, body)
	}
	if code, body := get(t, base+"/introspect/trace?window=3s"); code != 200 || !strings.Contains(body, `"3s"`) {
		t.Errorf("/introspect/trace = %d %q", code, body)
	}
	if code, body := get(t, base+"/introspect/trace?window=bogus"); code != 400 {
		t.Errorf("bad window = %d %q", code, body)
	}
	if code, _ := get(t, base+"/introspect/lb"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /introspect/lb = %d, want 405", code)
	}
	resp, err := http.Post(base+"/introspect/lb", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "triggered") {
		t.Errorf("POST /introspect/lb = %d %q", resp.StatusCode, body)
	}
}

func TestServeNilIntrospect(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/introspect", "/introspect/trace", "/introspect/lb"} {
		if code, _ := get(t, base+path); code != http.StatusNotFound {
			t.Errorf("%s without source = %d, want 404", path, code)
		}
	}
}

// TestServeConcurrentScrapeHammer scrapes /metrics and /introspect from many
// goroutines while counters update — under -race this is the satellite guard
// for the debug endpoint's thread-safety.
func TestServeConcurrentScrapeHammer(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "hammered")
	srv, err := Serve("127.0.0.1:0", reg, nil, &fakeIntro{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var upd sync.WaitGroup
	upd.Add(1)
	go func() {
		defer upd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				reg.Histogram("hammer_bytes", "sizes").Observe(int64(c.Value()))
			}
		}
	}()

	const scrapers = 8
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{"/metrics", "/introspect", "/introspect/trace?window=1s"}
			for j := 0; j < 25; j++ {
				if code, _ := get(t, base+paths[(i+j)%len(paths)]); code != 200 {
					t.Errorf("scrape %d/%d: status %d", i, j, code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	upd.Wait()
}
