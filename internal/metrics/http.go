package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// TraceSource is anything that can dump a trace snapshot as JSON —
// satisfied by *trace.Tracer (kept as an interface so metrics doesn't
// import trace).
type TraceSource interface {
	WriteJSON(w io.Writer) error
}

// IntrospectSource is the live cluster-introspection view behind the
// /introspect endpoints — satisfied by *introspect.Cluster (an interface so
// metrics doesn't import introspect). See DESIGN.md §3.6.
type IntrospectSource interface {
	// WriteSnapshotJSON writes the assembled cluster snapshot as JSON.
	WriteSnapshotJSON(w io.Writer) error
	// WriteTraceWindow exports the last `window` of the live trace as
	// Chrome trace-event JSON.
	WriteTraceWindow(w io.Writer, window time.Duration) error
	// TriggerLB starts a forced load-balancing round and writes the JSON
	// result.
	TriggerLB(w io.Writer) error
}

// Server is a running debug endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful when Serve was given ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	return s.srv.Close()
}

// Serve starts the debug HTTP endpoint on addr, exposing:
//
//	/metrics          registry text exposition
//	/trace            trace snapshot as JSON (404 if no tracer attached)
//	/introspect       live cluster snapshot as JSON (404 without sampling)
//	/introspect/trace Chrome export of the live trace window (?window=5s)
//	/introspect/lb    POST: trigger a forced load-balancing round
//	/debug/pprof      the stdlib profiler suite
//
// A dedicated mux keeps this off http.DefaultServeMux. Returns once the
// listener is bound; serving continues in the background until Close.
// is may be nil (no introspection on this node).
func Serve(addr string, reg *Registry, tr TraceSource, is IntrospectSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if tr == nil {
			http.Error(w, "tracing not enabled on this node", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/introspect", func(w http.ResponseWriter, _ *http.Request) {
		if is == nil {
			http.Error(w, "introspection not enabled on this node", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := is.WriteSnapshotJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/introspect/trace", func(w http.ResponseWriter, r *http.Request) {
		if is == nil {
			http.Error(w, "introspection not enabled on this node", http.StatusNotFound)
			return
		}
		window := 5 * time.Second
		if s := r.URL.Query().Get("window"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d <= 0 {
				http.Error(w, fmt.Sprintf("bad window %q (want a Go duration, e.g. 5s)", s), http.StatusBadRequest)
				return
			}
			window = d
		}
		w.Header().Set("Content-Type", "application/json")
		if err := is.WriteTraceWindow(w, window); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/introspect/lb", func(w http.ResponseWriter, r *http.Request) {
		if is == nil {
			http.Error(w, "introspection not enabled on this node", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST to trigger a load-balancing round", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := is.TriggerLB(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}
