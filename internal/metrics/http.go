package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// TraceSource is anything that can dump a trace snapshot as JSON —
// satisfied by *trace.Tracer (kept as an interface so metrics doesn't
// import trace).
type TraceSource interface {
	WriteJSON(w io.Writer) error
}

// Server is a running debug endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful when Serve was given ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	return s.srv.Close()
}

// Serve starts the debug HTTP endpoint on addr, exposing:
//
//	/metrics      registry text exposition
//	/trace        trace snapshot as JSON (404 if no tracer attached)
//	/debug/pprof  the stdlib profiler suite
//
// A dedicated mux keeps this off http.DefaultServeMux. Returns once the
// listener is bound; serving continues in the background until Close.
func Serve(addr string, reg *Registry, tr TraceSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if tr == nil {
			http.Error(w, "tracing not enabled on this node", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}
