package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("test_depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	h := reg.Histogram("test_sizes", "a histogram")
	for _, v := range []int64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1006 {
		t.Errorf("histogram count/sum = %d/%d, want 5/1006", h.Count(), h.Sum())
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b
	}
	if total != 5 {
		t.Errorf("bucket total = %d, want 5", total)
	}
}

func TestRegisterIdempotentByName(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same", "h")
	b := reg.Counter("same", "h")
	if a != b {
		t.Error("re-registering a counter must return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter must panic")
		}
	}()
	reg.Gauge("same", "h")
}

func TestWriteTextExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("charmgo_sends_total", "messages sent").Add(3)
	reg.Gauge("charmgo_mailbox_depth{pe=\"0\"}", "queued messages").Set(2)
	reg.GaugeFunc("charmgo_live", "liveness", func() int64 { return 1 })
	h := reg.Histogram("charmgo_batch_bytes", "flush sizes")
	h.Observe(100)
	h.Observe(5000)

	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP charmgo_sends_total messages sent",
		"charmgo_sends_total 3",
		"charmgo_mailbox_depth{pe=\"0\"} 2",
		"charmgo_live 1",
		"charmgo_batch_bytes_count 2",
		"charmgo_batch_bytes_sum 5100",
		"charmgo_batch_bytes_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative: the largest le bucket equals count.
	lines := strings.Split(out, "\n")
	var last string
	for _, l := range lines {
		if strings.HasPrefix(l, "charmgo_batch_bytes_bucket") {
			last = l
		}
	}
	if !strings.HasSuffix(last, " 2") {
		t.Errorf("last cumulative bucket %q, want count 2", last)
	}
}

// TestRegistryConcurrentHammer drives registration and updates from many
// goroutines; run under -race this checks the lock-free update paths.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hammer_total", "shared")
			g := reg.Gauge(fmt.Sprintf("hammer_gauge{w=\"%d\"}", w%4), "sharded")
			h := reg.Histogram("hammer_hist", "shared")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				if i%500 == 0 {
					var sb strings.Builder
					reg.WriteText(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("hammer_total", "").Value(); got != workers*iters {
		t.Errorf("hammer counter = %d, want %d", got, workers*iters)
	}
	if got := reg.Histogram("hammer_hist", "").Count(); got != workers*iters {
		t.Errorf("hammer histogram count = %d, want %d", got, workers*iters)
	}
}

// TestUpdatePrimitivesZeroAlloc pins the hot-path instruments at zero
// allocations per update, the property that lets the runtime call them
// unconditionally once registered.
func TestUpdatePrimitivesZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("z_total", "")
	g := reg.Gauge("z_gauge", "")
	h := reg.Histogram("z_hist", "")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(77) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}

type fakeTrace struct{}

func (fakeTrace) WriteJSON(w io.Writer) error {
	_, err := io.WriteString(w, `{"events":[]}`)
	return err
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "help").Add(9)
	srv, err := Serve("127.0.0.1:0", reg, fakeTrace{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "served_total 9") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, `"events"`) {
		t.Errorf("/trace = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServeNilTrace(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/trace without tracer = %d, want 404", resp.StatusCode)
	}
}
