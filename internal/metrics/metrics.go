// Package metrics is a lock-free counters/gauges registry for the charmgo
// runtime. Instruments are plain atomics — updating one is a single
// atomic add with no map lookups or locks, cheap enough for the message
// hot path (the runtime additionally guards every update behind a single
// nil check so a disabled registry costs one predicted branch).
//
// The registry itself takes a mutex only at registration time; reads for
// exposition (WriteText) are lock-free snapshots. Exposition is a
// Prometheus-style text format served by the debug endpoint in http.go.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (must be >= 0 for meaningful rates; not enforced).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of power-of-two buckets in a Histogram:
// bucket i counts observations v with 2^(i-1) <= v < 2^i (bucket 0 is
// v <= 0 or v == 1's lower neighbours, see bucketOf). 40 buckets cover
// values up to ~5e11, plenty for byte sizes and microsecond latencies.
const HistBuckets = 40

// Histogram counts observations in power-of-two buckets. Lock-free.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // 2^(b-1) <= v < 2^b
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() [HistBuckets]int64 {
	var out [HistBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the p-quantile (p in [0,1]) of the observed values by
// linear interpolation inside the power-of-2 bucket containing the target
// rank: bucket i (i >= 1) spans [2^(i-1), 2^i). The estimate is exact at
// bucket boundaries and within a factor of 2 anywhere else — plenty for the
// byte-size and latency distributions these histograms hold. Returns 0 when
// nothing was observed.
func (h *Histogram) Quantile(p float64) float64 {
	bk := h.Buckets()
	var total int64
	for _, c := range bk {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum int64
	for i, c := range bk {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == 0 {
				return 0 // bucket 0 holds v <= 0
			}
			lo := float64(int64(1) << uint(i-1))
			hi := float64(int64(1) << uint(i))
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return float64(int64(1) << uint(HistBuckets-1))
}

// instrument is the registry's view of one named metric.
type instrument struct {
	name string
	help string
	read func(w io.Writer, name string)
}

// Registry holds named instruments. Registration takes a mutex; using a
// registered instrument is lock-free. Names follow Prometheus conventions
// and may embed a label set, e.g. `charmgo_mailbox_depth{pe="3"}`.
type Registry struct {
	mu   sync.Mutex
	ins  []instrument
	byNm map[string]any // name -> *Counter/*Gauge/*Histogram/GaugeFunc marker
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNm: make(map[string]any)}
}

// register installs read under name, or returns the existing instrument of
// the same name (idempotent by name; panics on a type collision so wiring
// bugs fail loudly in tests).
func (r *Registry) register(name, help string, v any, read func(io.Writer, string)) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byNm[name]; ok {
		if fmt.Sprintf("%T", old) != fmt.Sprintf("%T", v) {
			panic(fmt.Sprintf("metrics: %q re-registered as %T (was %T)", name, v, old))
		}
		return old
	}
	r.byNm[name] = v
	r.ins = append(r.ins, instrument{name: name, help: help, read: read})
	return v
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	got := r.register(name, help, c, func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	})
	cc, ok := got.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is not a counter", name))
	}
	if cc != c {
		return cc
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	got := r.register(name, help, g, func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	})
	gg, ok := got.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is not a gauge", name))
	}
	return gg
}

// GaugeFunc registers a gauge whose value is computed at scrape time by fn
// (e.g. current mailbox depth). Re-registering the same name keeps the
// first function.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, help, fn, func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	})
}

// Histogram returns the histogram registered under name, creating it if
// needed. Exposed as cumulative `_bucket{le="..."}` lines plus `_sum` and
// `_count`, Prometheus-style.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	got := r.register(name, help, h, func(w io.Writer, n string) {
		bk := h.Buckets()
		var cum int64
		for i, c := range bk {
			if c == 0 {
				continue
			}
			cum += c
			// upper bound of bucket i is 2^i - 1... use 1<<i as "le"
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, int64(1)<<uint(i), cum)
		}
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
		if h.Count() > 0 {
			fmt.Fprintf(w, "%s %g\n", suffixName(n, "_p50"), h.Quantile(0.5))
			fmt.Fprintf(w, "%s %g\n", suffixName(n, "_p99"), h.Quantile(0.99))
		}
	})
	hh, ok := got.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is not a histogram", name))
	}
	return hh
}

// Lookup returns the instrument registered under name (*Counter, *Gauge,
// *Histogram, or the GaugeFunc's func() int64) without creating one — nil
// when nothing is registered. For observers that surface a metric only if
// some other component happens to maintain it.
func (r *Registry) Lookup(name string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byNm[name]
}

// WriteText writes every instrument in a Prometheus-style text exposition,
// sorted by name for stable output.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	ins := append([]instrument(nil), r.ins...)
	r.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].name < ins[j].name })
	for _, in := range ins {
		if in.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", baseName(in.name), in.help)
		}
		in.read(w, in.name)
	}
}

// suffixName appends a suffix to a metric name, keeping any label set in
// place: suffixName(`foo{pe="1"}`, "_p50") is `foo_p50{pe="1"}`.
func suffixName(name, suffix string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i] + suffix + name[i:]
		}
	}
	return name + suffix
}

// baseName strips a trailing {label="..."} set from a metric name.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}
