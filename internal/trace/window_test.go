package trace

import (
	"testing"
	"time"
)

func TestWindowReportCutsOldEvents(t *testing.T) {
	tr := New(1)
	tr.EM(0, "Old", "M", 0, time.Millisecond)
	tr.EM(0, "New", "M", time.Hour, time.Millisecond) // At far beyond any cut
	time.Sleep(50 * time.Millisecond)                 // Wall must exceed the window

	r := tr.WindowReport(0, 10*time.Millisecond)
	if len(r.Events) != 1 || r.Events[0].Chare != "New" {
		t.Fatalf("windowed events = %+v, want only the recent one", r.Events)
	}
	// A straddling event (starts before the cut, ends inside it) is kept.
	tr.EM(0, "Straddle", "M", 0, 2*time.Hour)
	r = tr.WindowReport(0, 10*time.Millisecond)
	if len(r.Events) != 2 {
		t.Fatalf("straddling event not kept: %+v", r.Events)
	}
}

func TestWindowReportFullPaths(t *testing.T) {
	tr := New(1)
	tr.EM(0, "A", "M", 0, time.Millisecond)
	if r := tr.WindowReport(0, 0); len(r.Events) != 1 {
		t.Errorf("window 0 (= everything) kept %d events", len(r.Events))
	}
	if r := tr.WindowReport(0, time.Hour); len(r.Events) != 1 {
		t.Errorf("window > wall kept %d events", len(r.Events))
	}
}

func TestDroppedByPE(t *testing.T) {
	const cap = 8
	tr := NewWithCap(2, cap)
	for i := 0; i < 3*cap; i++ {
		tr.EM(0, "A", "M", time.Duration(i), 1)
	}
	tr.EM(1, "B", "M", 0, 1)
	if got := tr.DroppedByPE(0); got != 2*cap {
		t.Errorf("DroppedByPE(0) = %d, want %d", got, 2*cap)
	}
	if got := tr.DroppedByPE(1); got != 0 {
		t.Errorf("DroppedByPE(1) = %d, want 0", got)
	}
	if got := tr.DroppedByPE(99); got != 0 {
		t.Errorf("DroppedByPE(out of range) = %d, want 0", got)
	}
	rep := tr.Report(0)
	if len(rep.DroppedPE) != 2 || rep.DroppedPE[0] != 2*cap || rep.DroppedPE[1] != 0 {
		t.Errorf("Report.DroppedPE = %v", rep.DroppedPE)
	}
}

func TestCommRows(t *testing.T) {
	tr := New(2)
	if rows := tr.CommRows(0, 2); rows != nil {
		t.Errorf("CommRows before SetTopology = %v, want nil", rows)
	}
	tr.SetTopology(4, 2) // this node hosts global PEs 2,3 of 4
	tr.Comm(2, 0, 100)
	tr.Comm(3, 3, 7)

	rows := tr.CommRows(2, 2)
	if len(rows) != 8 {
		t.Fatalf("len(rows) = %d, want 2*4", len(rows))
	}
	if rows[0] != 100 { // PE 2 -> PE 0
		t.Errorf("PE2->PE0 = %d, want 100", rows[0])
	}
	if rows[4+3] != 7 { // PE 3 -> PE 3
		t.Errorf("PE3->PE3 = %d, want 7", rows[7])
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 0}, {3, 2}} {
		if r := tr.CommRows(bad[0], bad[1]); r != nil {
			t.Errorf("CommRows(%d, %d) = %v, want nil", bad[0], bad[1], r)
		}
	}
}
