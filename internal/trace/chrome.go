package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto or chrome://tracing. pid is the node, tid the global
// PE; ts/dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

const usPerNs = 1e-3

// WriteChrome renders one or more node reports as a Chrome trace-event JSON
// object ({"traceEvents": [...]}) with one track per global PE (plus one
// "runtime" track per node for aggregator/transport activity). Timestamps
// from different nodes are aligned on the earliest report's start clock.
func WriteChrome(w io.Writer, reports ...Report) error {
	if len(reports) == 0 {
		return fmt.Errorf("trace: no reports to export")
	}
	sorted := append([]Report(nil), reports...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })

	// Align clocks: each node's Event.At is relative to its own tracer
	// start; shift onto the earliest start across the job.
	t0 := sorted[0].StartUnixNano
	for _, r := range sorted {
		if r.StartUnixNano < t0 {
			t0 = r.StartUnixNano
		}
	}

	var evs []chromeEvent
	meta := func(pid, tid int, name string, sortIdx int) {
		evs = append(evs,
			chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"sort_index": sortIdx}})
	}

	for _, r := range sorted {
		shift := float64(r.StartUnixNano-t0) * usPerNs
		evs = append(evs, chromeEvent{Name: "process_name", Ph: "M", PID: r.Node,
			Args: map[string]any{"name": fmt.Sprintf("node %d", r.Node)}})
		for pe := 0; pe < r.NumPEs; pe++ {
			gpe := r.BasePE + pe
			meta(r.Node, gpe, fmt.Sprintf("PE %d", gpe), gpe)
		}
		// runtime track (aggregator flushes, transport frames): tid beyond
		// any PE so it sorts last within the node.
		rtTID := r.TotalPEs + r.Node
		if r.TotalPEs == 0 {
			rtTID = r.BasePE + r.NumPEs
		}
		meta(r.Node, rtTID, fmt.Sprintf("node %d runtime", r.Node), 1<<20+r.Node)

		for _, e := range r.Events {
			tid := rtTID
			if e.PE >= 0 && e.PE < r.NumPEs {
				tid = r.BasePE + e.PE
			}
			ts := shift + float64(e.At)*usPerNs
			ce := chromeEvent{PID: r.Node, TID: tid, TS: ts}
			switch e.Kind {
			case EvEM:
				ce.Ph, ce.Cat = "X", "em"
				ce.Name = e.Chare + "." + e.Method
				ce.Dur = float64(e.Dur) * usPerNs
			case EvIdle:
				ce.Ph, ce.Cat, ce.Name = "X", "idle", "(idle)"
				ce.Dur = float64(e.Dur) * usPerNs
			case EvRecv:
				// render the queue wait as a span ending at the dequeue
				ce.Ph, ce.Cat, ce.Name = "i", "recv", "recv "+e.Method
				ce.S = "t"
				ce.Args = map[string]any{"queue_wait_us": float64(e.Dur) * usPerNs}
			case EvSend:
				ce.Ph, ce.Cat, ce.Name, ce.S = "i", "send", "send "+e.Method, "t"
				if e.Bytes > 0 || e.Dest != 0 {
					ce.Args = map[string]any{"bytes": e.Bytes, "dest_pe": e.Dest}
				}
			case EvFlush:
				ce.Ph, ce.Cat, ce.S = "i", "agg", "p"
				ce.Name = fmt.Sprintf("flush→node%d", e.Dest)
				ce.Args = map[string]any{"bytes": e.Bytes, "msgs": e.N}
			case EvFrameOut, EvFrameIn:
				ce.Ph, ce.Cat, ce.S = "i", "net", "p"
				dir := "frame←node"
				if e.Kind == EvFrameOut {
					dir = "frame→node"
				}
				ce.Name = fmt.Sprintf("%s%d", dir, e.Dest)
				ce.Args = map[string]any{"bytes": e.Bytes}
			case EvHeartbeatMiss:
				ce.Ph, ce.Cat, ce.S = "i", "ft", "g"
				ce.Name = fmt.Sprintf("hb-miss node%d", e.Dest)
			case EvNodeDeath:
				ce.Ph, ce.Cat, ce.S = "i", "ft", "g"
				ce.Name = fmt.Sprintf("node-death node%d", e.Dest)
			case EvRecovery:
				ce.Ph, ce.Cat = "X", "ft"
				ce.Name = fmt.Sprintf("recovery epoch %d", e.N)
				ce.Dur = float64(e.Dur) * usPerNs
			case EvTreeHop:
				ce.Ph, ce.Cat, ce.S = "i", "coll", "p"
				ce.Name = fmt.Sprintf("tree-hop→node%d", e.Dest)
				ce.Args = map[string]any{"n": e.N}
			case EvFrag:
				ce.Ph, ce.Cat, ce.S = "i", "coll", "p"
				ce.Name = fmt.Sprintf("frag%d→node%d", e.N, e.Dest)
				ce.Args = map[string]any{"bytes": e.Bytes}
			case EvSteal:
				ce.Ph, ce.Cat, ce.S = "i", "steal", "t"
				ce.Name = fmt.Sprintf("steal←PE%d", e.Dest)
				ce.Args = map[string]any{"victim_pe": e.Dest}
			default:
				ce.Ph, ce.Cat, ce.S = "i", e.Kind.String(), "t"
				ce.Name = e.Kind.String()
				if e.Chare != "" {
					ce.Name += " " + e.Chare
				}
				if e.N != 0 {
					ce.Args = map[string]any{"n": e.N}
				}
			}
			evs = append(evs, ce)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}
