package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFTEventKindNames(t *testing.T) {
	want := map[Kind]string{
		EvHeartbeatMiss: "hb-miss",
		EvNodeDeath:     "node-death",
		EvRecovery:      "recovery",
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Errorf("kind %d String() = %q, want %q", k, got, name)
		}
	}
}

// TestFTEventRecordZeroAlloc extends the instrumentation-off guarantee to
// the fault-tolerance events: recording them must not allocate.
func TestFTEventRecordZeroAlloc(t *testing.T) {
	tr := New(1)
	if n := testing.AllocsPerRun(1000, func() {
		tr.HeartbeatMiss(2, time.Millisecond)
		tr.NodeDeath(2, 2*time.Millisecond)
		tr.Recovery(3, 3*time.Millisecond, time.Millisecond)
	}); n != 0 {
		t.Errorf("ft event recording allocates %v/op, want 0", n)
	}
}

func TestFTEventsInChromeExport(t *testing.T) {
	tr := New(1)
	tr.SetTopology(1, 0)
	tr.HeartbeatMiss(2, time.Millisecond)
	tr.NodeDeath(2, 2*time.Millisecond)
	tr.Recovery(5, 3*time.Millisecond, 4*time.Millisecond)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Report(0)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hb-miss node2", "node-death node2", "recovery epoch 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %q", want)
		}
	}
	// The recovery event is a span with its duration preserved.
	if !strings.Contains(out, `"ph":"X","name":"recovery epoch 5"`) &&
		!strings.Contains(out, `"name":"recovery epoch 5"`) {
		t.Error("recovery not exported as a span")
	}
}
