package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRingBufferCapAndDropped(t *testing.T) {
	const cap = 8
	tr := NewWithCap(1, cap)
	for i := 0; i < 3*cap; i++ {
		tr.EM(0, "C", "M", time.Duration(i), 1)
	}
	evs := tr.Snapshot()
	if len(evs) != cap {
		t.Fatalf("snapshot holds %d events, want ring cap %d", len(evs), cap)
	}
	if got := tr.Dropped(); got != 2*cap {
		t.Errorf("dropped = %d, want %d", got, 2*cap)
	}
	// The ring keeps the newest events, in order.
	for i, e := range evs {
		want := time.Duration(2*cap + i)
		if e.At != want {
			t.Errorf("evs[%d].At = %v, want %v (oldest overwritten first)", i, e.At, want)
		}
	}
	// Dropped count propagates into reports and summaries.
	if rep := tr.Report(0); rep.Dropped != 2*cap {
		t.Errorf("report dropped = %d, want %d", rep.Dropped, 2*cap)
	}
}

func TestCommMatrix(t *testing.T) {
	tr := New(2)
	tr.SetTopology(4, 0)
	tr.Comm(0, 3, 100)
	tr.Comm(0, 3, 50)
	tr.Comm(3, 0, 7)
	tr.Comm(-1, 3, 999) // broadcast: not attributable, must be ignored
	tr.Comm(0, 99, 999) // out of range: ignored
	rep := tr.Report(0)
	if got := rep.CommBytes[0*4+3]; got != 150 {
		t.Errorf("bytes 0->3 = %d, want 150", got)
	}
	if got := rep.CommMsgs[0*4+3]; got != 2 {
		t.Errorf("msgs 0->3 = %d, want 2", got)
	}
	if got := rep.CommBytes[3*4+0]; got != 7 {
		t.Errorf("bytes 3->0 = %d, want 7", got)
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	tr := New(2)
	if n := testing.AllocsPerRun(1000, func() {
		tr.EM(0, "C", "M", 1, 2)
		tr.Recv(1, "M", 3, 1)
		tr.Idle(0, 4, 1)
	}); n != 0 {
		t.Errorf("event recording allocates %v/op, want 0", n)
	}
	tr.SetTopology(2, 0)
	if n := testing.AllocsPerRun(1000, func() { tr.Comm(0, 1, 64) }); n != 0 {
		t.Errorf("Comm allocates %v/op, want 0", n)
	}
}

// buildReports fabricates a two-node job's worth of reports.
func buildReports() []Report {
	trs := []*Tracer{New(2), New(2)}
	for node, tr := range trs {
		tr.SetTopology(4, node*2)
		tr.EM(0, "Block", "RecvGhost", 10, 5)
		tr.EM(1, "Block", "RecvGhost", 12, 6)
		tr.Idle(0, 0, 10)
		tr.Recv(0, "RecvGhost", 10, 2)
		tr.SendTo(0, (node*2+3)%4, "RecvGhost", 11, 0)
		tr.Flush(node, 20, 4096, 7)
		tr.Frame(true, 1-node, 21, 4100)
		tr.Frame(false, 1-node, 22, 2100)
		tr.TreeHop(1-node, 23, 4100)
		tr.Frag(1-node, 24, 65536, 3)
		tr.Comm(node*2, (node*2+3)%4, 4096)
	}
	return []Report{trs[0].Report(0), trs[1].Report(1)}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, buildReports()...); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var emSpans, idleSpans, threadNames int
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				t.Errorf("negative dur in %q", e.Name)
			}
			if e.Name == "(idle)" {
				idleSpans++
				continue
			}
			emSpans++
			tids[e.Tid] = true
		case "M":
			if e.Name == "thread_name" {
				threadNames++
			}
		}
	}
	if emSpans != 4 {
		t.Errorf("EM spans = %d, want 4", emSpans)
	}
	if idleSpans != 2 {
		t.Errorf("idle spans = %d, want 2", idleSpans)
	}
	// EM spans from node 1 must land on global-PE tracks 2 and 3.
	if !tids[2] || !tids[3] {
		t.Errorf("X-event tids = %v, want node 1's PEs mapped to 2 and 3", tids)
	}
	if threadNames == 0 {
		t.Error("no thread_name metadata")
	}
	if !strings.Contains(buf.String(), "flush") {
		t.Error("flush instants missing from export")
	}
	// Spanning-tree collective events render as "coll"-category instants:
	// one tree hop and one fragment per node, addressed to the peer node.
	for _, want := range []string{"tree-hop→node0", "tree-hop→node1", "frag3→node0", "frag3→node1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("collective event %q missing from Chrome export", want)
		}
	}
}

func TestAggregateRemapsPEs(t *testing.T) {
	g := Aggregate(buildReports())
	if g.TotalPEs != 4 {
		t.Fatalf("TotalPEs = %d", g.TotalPEs)
	}
	for gpe := 0; gpe < 4; gpe++ {
		if g.PE[gpe].EMs != 1 {
			t.Errorf("PE %d EMs = %d, want 1", gpe, g.PE[gpe].EMs)
		}
	}
	if g.CommBytes[0*4+3] != 4096 || g.CommBytes[2*4+1] != 4096 {
		t.Errorf("comm matrix not merged: %v", g.CommBytes)
	}
	found := false
	for _, st := range g.Methods {
		if st.Chare == "Block" && st.Method == "RecvGhost" {
			found = st.Count == 4
		}
	}
	if !found {
		t.Errorf("method stats = %+v, want Block.RecvGhost count 4", g.Methods)
	}
	var buf bytes.Buffer
	g.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"PE 0", "PE 3", "Block.RecvGhost", "wire bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
