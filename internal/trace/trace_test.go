package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	tr := New(2)
	tr.EM(0, "Block", "RecvGhost", 0, 2*time.Millisecond)
	tr.EM(0, "Block", "RecvGhost", 3*time.Millisecond, 4*time.Millisecond)
	tr.EM(1, "Block", "Init", time.Millisecond, time.Millisecond)
	tr.Send(0, "RecvGhost", time.Millisecond, 128)
	tr.Send(1, "RecvGhost", 2*time.Millisecond, 0)
	s := tr.Summarize()
	if s.NumEMs != 3 {
		t.Errorf("NumEMs = %d", s.NumEMs)
	}
	if s.Sends != 2 || s.Bytes != 128 {
		t.Errorf("Sends=%d Bytes=%d", s.Sends, s.Bytes)
	}
	if s.PEBusy[0] != 6*time.Millisecond || s.PEBusy[1] != time.Millisecond {
		t.Errorf("PEBusy = %v", s.PEBusy)
	}
	if len(s.Methods) != 2 {
		t.Fatalf("Methods = %v", s.Methods)
	}
	if s.Methods[0].Method != "RecvGhost" || s.Methods[0].Count != 2 ||
		s.Methods[0].Max != 4*time.Millisecond {
		t.Errorf("top method = %+v", s.Methods[0])
	}
}

func TestSnapshotOrdering(t *testing.T) {
	tr := New(2)
	tr.EM(1, "A", "M", 5*time.Millisecond, time.Millisecond)
	tr.EM(0, "A", "M", time.Millisecond, time.Millisecond)
	tr.Send(0, "M", 3*time.Millisecond, 0)
	evs := tr.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %v", evs)
		}
	}
}

func TestUnknownPEGoesToExtraShard(t *testing.T) {
	tr := New(1)
	tr.Send(-1, "M", 0, 10)
	tr.Send(7, "M", 0, 20)
	s := tr.Summarize()
	if s.Sends != 2 || s.Bytes != 30 {
		t.Errorf("summary %+v", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.EM(g%4, "C", "M", time.Duration(i), time.Microsecond)
				tr.Send(g%4, "M", time.Duration(i), 1)
			}
		}(g)
	}
	wg.Wait()
	s := tr.Summarize()
	if s.NumEMs != 800 || s.Sends != 800 {
		t.Errorf("NumEMs=%d Sends=%d", s.NumEMs, s.Sends)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := New(1)
	tr.EM(0, "C", "M", time.Millisecond, time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Chare != "C" {
		t.Errorf("decoded %v", evs)
	}
}

func TestFprintSummary(t *testing.T) {
	tr := New(2)
	tr.EM(0, "Block", "RecvGhost", 0, time.Millisecond)
	var buf bytes.Buffer
	tr.Summarize().Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"PE 0", "Block.RecvGhost", "entry method"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
