// Package trace is a lightweight performance-tracing facility for the
// charmgo runtime, in the spirit of Charm++'s Projections: it records entry
// method executions and message sends per PE, and produces utilization and
// per-method summaries. Attach a Tracer through core.Config.Trace; the
// runtime records events only when one is attached (zero overhead
// otherwise).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// EvEM is one entry-method execution (Dur covers the run time).
	EvEM Kind = iota
	// EvSend is one message send.
	EvSend
)

// Event is one recorded occurrence.
type Event struct {
	PE     int           `json:"pe"`
	Kind   Kind          `json:"kind"`
	At     time.Duration `json:"at"` // since tracer creation
	Dur    time.Duration `json:"dur,omitempty"`
	Chare  string        `json:"chare,omitempty"`
	Method string        `json:"method,omitempty"`
	Bytes  int           `json:"bytes,omitempty"` // wire size; 0 for in-node
}

// Tracer collects events. Safe for concurrent use; per-PE buffers keep
// contention off the hot path.
type Tracer struct {
	start time.Time
	shard []shard
	extra shard // events with unknown PE
}

type shard struct {
	mu sync.Mutex
	ev []Event
}

// New creates a tracer for numPEs local PEs.
func New(numPEs int) *Tracer {
	return &Tracer{start: time.Now(), shard: make([]shard, numPEs)}
}

func (t *Tracer) bucket(pe int) *shard {
	if pe >= 0 && pe < len(t.shard) {
		return &t.shard[pe]
	}
	return &t.extra
}

// Since returns the tracer-relative timestamp for now.
func (t *Tracer) Since() time.Duration { return time.Since(t.start) }

// EM records one entry-method execution.
func (t *Tracer) EM(pe int, chare, method string, at, dur time.Duration) {
	b := t.bucket(pe)
	b.mu.Lock()
	b.ev = append(b.ev, Event{PE: pe, Kind: EvEM, At: at, Dur: dur, Chare: chare, Method: method})
	b.mu.Unlock()
}

// Send records one message send (bytes 0 when the message stayed in-node by
// reference).
func (t *Tracer) Send(pe int, method string, at time.Duration, bytes int) {
	b := t.bucket(pe)
	b.mu.Lock()
	b.ev = append(b.ev, Event{PE: pe, Kind: EvSend, At: at, Method: method, Bytes: bytes})
	b.mu.Unlock()
}

// Snapshot returns all events ordered by time.
func (t *Tracer) Snapshot() []Event {
	var out []Event
	collect := func(s *shard) {
		s.mu.Lock()
		out = append(out, s.ev...)
		s.mu.Unlock()
	}
	for i := range t.shard {
		collect(&t.shard[i])
	}
	collect(&t.extra)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MethodStat aggregates one entry method's executions.
type MethodStat struct {
	Chare  string
	Method string
	Count  int
	Total  time.Duration
	Max    time.Duration
}

// Summary aggregates a trace.
type Summary struct {
	Wall    time.Duration
	PEBusy  []time.Duration // per-PE entry-method time
	Sends   int
	Bytes   int64
	Methods []MethodStat // sorted by total time, descending
	NumEMs  int
}

// Summarize computes aggregate statistics from the recorded events.
func (t *Tracer) Summarize() Summary {
	evs := t.Snapshot()
	s := Summary{Wall: t.Since(), PEBusy: make([]time.Duration, len(t.shard))}
	byMethod := map[string]*MethodStat{}
	for _, e := range evs {
		switch e.Kind {
		case EvEM:
			s.NumEMs++
			if e.PE >= 0 && e.PE < len(s.PEBusy) {
				s.PEBusy[e.PE] += e.Dur
			}
			key := e.Chare + "." + e.Method
			m := byMethod[key]
			if m == nil {
				m = &MethodStat{Chare: e.Chare, Method: e.Method}
				byMethod[key] = m
			}
			m.Count++
			m.Total += e.Dur
			if e.Dur > m.Max {
				m.Max = e.Dur
			}
		case EvSend:
			s.Sends++
			s.Bytes += int64(e.Bytes)
		}
	}
	for _, m := range byMethod {
		s.Methods = append(s.Methods, *m)
	}
	sort.Slice(s.Methods, func(i, j int) bool { return s.Methods[i].Total > s.Methods[j].Total })
	return s
}

// Utilization returns each PE's busy fraction of the wall time.
func (s Summary) Utilization() []float64 {
	out := make([]float64, len(s.PEBusy))
	if s.Wall <= 0 {
		return out
	}
	for i, b := range s.PEBusy {
		out[i] = float64(b) / float64(s.Wall)
	}
	return out
}

// WriteJSON dumps the raw events as JSON (one array), Projections-log style.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Snapshot())
}

// Fprint writes a human-readable summary table.
func (s Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "wall %.3fs, %d entry methods, %d sends (%d bytes on the wire)\n",
		s.Wall.Seconds(), s.NumEMs, s.Sends, s.Bytes)
	util := s.Utilization()
	for pe, u := range util {
		fmt.Fprintf(w, "  PE %-3d busy %5.1f%% (%8.3fms)\n", pe, u*100, s.PEBusy[pe].Seconds()*1000)
	}
	fmt.Fprintf(w, "  %-32s %8s %12s %12s\n", "entry method", "count", "total", "max")
	for _, m := range s.Methods {
		fmt.Fprintf(w, "  %-32s %8d %10.3fms %10.3fms\n",
			m.Chare+"."+m.Method, m.Count, m.Total.Seconds()*1000, m.Max.Seconds()*1000)
	}
}
