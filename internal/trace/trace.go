// Package trace is the charmgo performance-tracing facility, in the spirit
// of Charm++'s Projections: it records the full lifecycle of runtime
// activity per PE — entry-method executions, message sends and dequeues
// (queue-wait latency), PE idle spans, reductions, futures, quiescence,
// migrations, load-balancer decisions, aggregator flushes and transport
// frames — and produces utilization summaries, a PE×PE communication
// matrix, and Chrome trace-event timelines (chrome.go) loadable in
// Perfetto.
//
// Attach a Tracer through core.Config.Trace; the runtime records events
// only when one is attached (zero overhead otherwise). Per-shard ring
// buffers bound memory: once a PE's buffer is full the oldest events are
// overwritten and Dropped counts the loss, so long runs cannot OOM the
// tracer.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// EvEM is one entry-method execution (Dur covers the run time).
	EvEM Kind = iota
	// EvSend is one message send (Dest is the destination PE when known).
	EvSend
	// EvRecv is one message dequeue at its destination PE; Dur is the time
	// the message waited in the mailbox (queue-wait latency).
	EvRecv
	// EvIdle is a span during which the PE scheduler had no work.
	EvIdle
	// EvReduction is one completed reduction at its root PE.
	EvReduction
	// EvFuture is one future fulfilled on its owner PE.
	EvFuture
	// EvQD is one quiescence detection at the coordinator.
	EvQD
	// EvMigrateOut is one element emigrating (Dest is the destination PE).
	EvMigrateOut
	// EvMigrateIn is one element arriving after migration.
	EvMigrateIn
	// EvLB is one load-balancer decision at a collection root (N = number
	// of migration orders issued).
	EvLB
	// EvFlush is one aggregator batch transmission (Dest = destination
	// node, Bytes = batch frame size, N = messages coalesced).
	EvFlush
	// EvFrameOut is one outbound transport frame (Dest = destination node).
	EvFrameOut
	// EvFrameIn is one inbound transport frame (Dest = source node).
	EvFrameIn
	// EvHeartbeatMiss is one missed-heartbeat suspicion tick raised by the
	// failure detector (Dest = suspected peer node).
	EvHeartbeatMiss
	// EvNodeDeath is the failure detector declaring a peer node dead
	// (Dest = dead node).
	EvNodeDeath
	// EvRecovery is one completed fault-tolerance recovery (N = restored
	// checkpoint epoch, Dur = detection-to-restore latency when known).
	EvRecovery
	// EvTreeHop is one collective spanning-tree hop: a broadcast frame sent
	// or relayed to a child node, or a merged reduction partial forwarded to
	// a parent node (Dest = peer node; Bytes = frame size for broadcasts,
	// N = folded contributions for reduction forwards).
	EvTreeHop
	// EvFrag is one broadcast fragment sent or relayed down the tree
	// (Dest = child node, Bytes = chunk size, N = fragment index).
	EvFrag
	// EvSteal is one run grant stolen by an idle PE from a sibling's deque
	// (PE = thief, Dest = victim PE).
	EvSteal

	numKinds
)

var kindNames = [numKinds]string{
	"em", "send", "recv", "idle", "reduction", "future", "qd",
	"migrate-out", "migrate-in", "lb", "flush", "frame-out", "frame-in",
	"hb-miss", "node-death", "recovery", "tree-hop", "frag", "steal",
}

// String returns a short stable name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence. PE is a node-local PE index (see
// Report.BasePE for the global offset); Dest is a global PE or node id
// depending on Kind.
type Event struct {
	PE     int           `json:"pe"`
	Kind   Kind          `json:"kind"`
	At     time.Duration `json:"at"` // since tracer creation
	Dur    time.Duration `json:"dur,omitempty"`
	Chare  string        `json:"chare,omitempty"`
	Method string        `json:"method,omitempty"`
	Bytes  int           `json:"bytes,omitempty"` // wire size; 0 for in-node
	Dest   int           `json:"dest,omitempty"`  // destination PE/node (kind-specific)
	N      int           `json:"n,omitempty"`     // kind-specific count (LB moves, batch msgs)
}

// DefaultEventCap is the per-shard ring-buffer capacity used by New.
const DefaultEventCap = 1 << 16

// Tracer collects events. Safe for concurrent use; per-PE buffers keep
// contention off the hot path.
type Tracer struct {
	start   time.Time
	cap     int
	shard   []shard
	extra   shard // events with unknown PE
	dropped atomic.Uint64

	// communication matrices, allocated by SetTopology (totalPEs×totalPEs,
	// row-major src×dst, atomically updated).
	totalPEs  int
	basePE    int
	commBytes []int64
	commMsgs  []int64
}

// shard is one PE's event ring. Until the ring reaches cap events it grows
// by appending; afterwards the oldest event is overwritten (next is the
// overwrite cursor) and both the shard's and the tracer-wide dropped
// counters increment.
type shard struct {
	mu      sync.Mutex
	ev      []Event
	next    int
	full    bool
	dropped atomic.Uint64
}

// New creates a tracer for numPEs local PEs with the default event cap.
func New(numPEs int) *Tracer { return NewWithCap(numPEs, DefaultEventCap) }

// NewWithCap creates a tracer whose per-PE ring buffers hold at most cap
// events each (cap <= 0 selects DefaultEventCap).
func NewWithCap(numPEs, cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultEventCap
	}
	return &Tracer{start: time.Now(), cap: cap, shard: make([]shard, numPEs)}
}

// SetTopology tells the tracer the job's global shape so it can account the
// PE×PE communication matrix. Called by the runtime at Start; without it the
// matrix stays nil and Comm is a no-op.
func (t *Tracer) SetTopology(totalPEs, basePE int) {
	if totalPEs <= 0 {
		return
	}
	t.totalPEs = totalPEs
	t.basePE = basePE
	t.commBytes = make([]int64, totalPEs*totalPEs)
	t.commMsgs = make([]int64, totalPEs*totalPEs)
}

// NumPEs returns the number of local PE shards.
func (t *Tracer) NumPEs() int { return len(t.shard) }

// Dropped returns the number of events lost to ring-buffer overwrites.
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// DroppedByPE returns one local PE's ring-buffer losses (0 for out-of-range
// PEs). Metrics exposes these as charmgo_trace_dropped_total{pe=...}.
func (t *Tracer) DroppedByPE(pe int) uint64 {
	if pe < 0 || pe >= len(t.shard) {
		return 0
	}
	return t.shard[pe].dropped.Load()
}

func (t *Tracer) bucket(pe int) *shard {
	if pe >= 0 && pe < len(t.shard) {
		return &t.shard[pe]
	}
	return &t.extra
}

// record appends e to the PE's ring, overwriting the oldest event when full.
func (t *Tracer) record(pe int, e Event) {
	b := t.bucket(pe)
	b.mu.Lock()
	if len(b.ev) < t.cap {
		b.ev = append(b.ev, e)
	} else {
		b.ev[b.next] = e
		b.next++
		if b.next == len(b.ev) {
			b.next = 0
		}
		b.full = true
		b.dropped.Add(1)
		t.dropped.Add(1)
	}
	b.mu.Unlock()
}

// Since returns the tracer-relative timestamp for now.
func (t *Tracer) Since() time.Duration { return time.Since(t.start) }

// EM records one entry-method execution.
func (t *Tracer) EM(pe int, chare, method string, at, dur time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvEM, At: at, Dur: dur, Chare: chare, Method: method})
}

// Send records one message send (bytes 0 when the message stayed in-node by
// reference).
func (t *Tracer) Send(pe int, method string, at time.Duration, bytes int) {
	t.record(pe, Event{PE: pe, Kind: EvSend, At: at, Method: method, Bytes: bytes})
}

// SendTo is Send with the destination PE recorded.
func (t *Tracer) SendTo(pe, dest int, method string, at time.Duration, bytes int) {
	t.record(pe, Event{PE: pe, Kind: EvSend, At: at, Method: method, Bytes: bytes, Dest: dest})
}

// Recv records one message dequeue; wait is the mailbox queue-wait latency.
func (t *Tracer) Recv(pe int, method string, at, wait time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvRecv, At: at, Dur: wait, Method: method})
}

// Idle records a span during which the PE had no work.
func (t *Tracer) Idle(pe int, at, dur time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvIdle, At: at, Dur: dur})
}

// Reduction records one completed reduction at its root PE.
func (t *Tracer) Reduction(pe int, at time.Duration, contributions int) {
	t.record(pe, Event{PE: pe, Kind: EvReduction, At: at, N: contributions})
}

// FutureSet records one future completing on its owner PE.
func (t *Tracer) FutureSet(pe int, at time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvFuture, At: at})
}

// QD records one quiescence detection at the coordinator PE.
func (t *Tracer) QD(pe int, at time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvQD, At: at})
}

// MigrateOut records one element leaving this PE for dest (a global PE).
func (t *Tracer) MigrateOut(pe, dest int, chare string, at time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvMigrateOut, At: at, Chare: chare, Dest: dest})
}

// Steal records one run grant stolen by the thief PE from a victim PE's
// deque (both node-local PE indices; victim is recorded in Dest).
func (t *Tracer) Steal(pe, victim int, at time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvSteal, At: at, Dest: victim})
}

// MigrateIn records one element arriving on this PE.
func (t *Tracer) MigrateIn(pe int, chare string, at time.Duration) {
	t.record(pe, Event{PE: pe, Kind: EvMigrateIn, At: at, Chare: chare})
}

// LB records one load-balancer decision issuing moves migration orders.
func (t *Tracer) LB(pe int, at time.Duration, moves int) {
	t.record(pe, Event{PE: pe, Kind: EvLB, At: at, N: moves})
}

// Flush records one aggregator batch transmission to a node.
func (t *Tracer) Flush(node int, at time.Duration, bytes, msgs int) {
	t.record(-1, Event{PE: -1, Kind: EvFlush, At: at, Dest: node, Bytes: bytes, N: msgs})
}

// Frame records one transport frame crossing the node boundary; out selects
// the direction, node is the peer.
func (t *Tracer) Frame(out bool, node int, at time.Duration, bytes int) {
	k := EvFrameIn
	if out {
		k = EvFrameOut
	}
	t.record(-1, Event{PE: -1, Kind: k, At: at, Dest: node, Bytes: bytes})
}

// HeartbeatMiss records a missed-heartbeat suspicion for a peer node raised
// by the failure detector (node-level, like Frame).
func (t *Tracer) HeartbeatMiss(node int, at time.Duration) {
	t.record(-1, Event{PE: -1, Kind: EvHeartbeatMiss, At: at, Dest: node})
}

// NodeDeath records the failure detector declaring a peer node dead.
func (t *Tracer) NodeDeath(node int, at time.Duration) {
	t.record(-1, Event{PE: -1, Kind: EvNodeDeath, At: at, Dest: node})
}

// Recovery records one completed fault-tolerance recovery: the checkpoint
// epoch that was restored and the detection-to-restore latency (0 when the
// recorder cannot know it, e.g. the runtime-internal restore path).
func (t *Tracer) Recovery(epoch int, at, dur time.Duration) {
	t.record(-1, Event{PE: -1, Kind: EvRecovery, At: at, Dur: dur, N: epoch})
}

// TreeHop records one collective spanning-tree hop: a broadcast frame sent
// or relayed to a child node (n = frame bytes), or a merged reduction
// partial forwarded to a parent node (n = folded contribution count).
func (t *Tracer) TreeHop(node int, at time.Duration, n int) {
	t.record(-1, Event{PE: -1, Kind: EvTreeHop, At: at, Dest: node, N: n})
}

// Frag records one broadcast fragment sent or relayed to a child node.
func (t *Tracer) Frag(node int, at time.Duration, bytes, idx int) {
	t.record(-1, Event{PE: -1, Kind: EvFrag, At: at, Dest: node, Bytes: bytes, N: idx})
}

// Comm accounts bytes on the wire from global PE src to global PE dst in the
// communication matrix. No-op until SetTopology; negative/out-of-range PEs
// (e.g. runtime-internal senders) are ignored.
func (t *Tracer) Comm(src, dst, bytes int) {
	n := t.totalPEs
	if t.commBytes == nil || src < 0 || dst < 0 || src >= n || dst >= n {
		return
	}
	i := src*n + dst
	atomic.AddInt64(&t.commBytes[i], int64(bytes))
	atomic.AddInt64(&t.commMsgs[i], 1)
}

// Snapshot returns all events ordered by time.
func (t *Tracer) Snapshot() []Event {
	var out []Event
	collect := func(s *shard) {
		s.mu.Lock()
		if s.full {
			// ring wrapped: oldest events start at the overwrite cursor
			out = append(out, s.ev[s.next:]...)
			out = append(out, s.ev[:s.next]...)
		} else {
			out = append(out, s.ev...)
		}
		s.mu.Unlock()
	}
	for i := range t.shard {
		collect(&t.shard[i])
	}
	collect(&t.extra)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Report is one node's complete trace, shippable to node 0 for job-wide
// aggregation (core gathers these over the exit protocol).
type Report struct {
	Node          int
	BasePE        int // first global PE hosted by the node
	NumPEs        int // local PE count
	TotalPEs      int // job-wide PE count
	StartUnixNano int64
	Wall          time.Duration
	Dropped       uint64
	DroppedPE     []uint64 // per local PE ring-buffer losses
	Events        []Event
	// CommBytes/CommMsgs are TotalPEs×TotalPEs row-major src×dst matrices;
	// only rows for this node's PEs are populated (each node accounts its
	// own sends). Nil when SetTopology was never called.
	CommBytes []int64
	CommMsgs  []int64
}

// Report snapshots this tracer as a node report.
func (t *Tracer) Report(node int) Report {
	r := Report{
		Node:          node,
		BasePE:        t.basePE,
		NumPEs:        len(t.shard),
		TotalPEs:      t.totalPEs,
		StartUnixNano: t.start.UnixNano(),
		Wall:          t.Since(),
		Dropped:       t.Dropped(),
		DroppedPE:     make([]uint64, len(t.shard)),
		Events:        t.Snapshot(),
	}
	for i := range t.shard {
		r.DroppedPE[i] = t.shard[i].dropped.Load()
	}
	if r.TotalPEs == 0 {
		r.TotalPEs = len(t.shard)
	}
	if t.commBytes != nil {
		r.CommBytes = atomicCopy(t.commBytes)
		r.CommMsgs = atomicCopy(t.commMsgs)
	}
	return r
}

// WindowReport is Report restricted to the last `window` of activity: only
// events whose span intersects [now-window, now] are kept. window <= 0
// keeps everything. This is the live on-demand export behind
// /introspect/trace — a running job's recent timeline without waiting for
// the exit-time gather.
func (t *Tracer) WindowReport(node int, window time.Duration) Report {
	r := t.Report(node)
	if window <= 0 || window >= r.Wall {
		return r
	}
	cut := r.Wall - window
	kept := make([]Event, 0, len(r.Events))
	for _, e := range r.Events {
		if e.At+e.Dur >= cut {
			kept = append(kept, e)
		}
	}
	r.Events = kept
	return r
}

// CommRows returns a copy of n consecutive source rows of the wire-byte
// communication matrix starting at global PE base (n × TotalPEs, row-major).
// Nil until SetTopology. The introspection sampler ships a node's own rows
// in its NodeSnapshot so node 0 can assemble the live PE×PE matrix.
func (t *Tracer) CommRows(base, n int) []int64 {
	tp := t.totalPEs
	if t.commBytes == nil || base < 0 || n <= 0 || (base+n)*tp > len(t.commBytes) {
		return nil
	}
	return atomicCopy(t.commBytes[base*tp : (base+n)*tp])
}

func atomicCopy(src []int64) []int64 {
	out := make([]int64, len(src))
	for i := range src {
		out[i] = atomic.LoadInt64(&src[i])
	}
	return out
}

// MethodStat aggregates one entry method's executions.
type MethodStat struct {
	Chare  string
	Method string
	Count  int
	Total  time.Duration
	Max    time.Duration
}

// Summary aggregates a single tracer's events (node-local view; use
// Aggregate for job-wide summaries across gathered reports).
type Summary struct {
	Wall    time.Duration
	PEBusy  []time.Duration // per-PE entry-method time
	PEIdle  []time.Duration // per-PE measured idle time
	Sends   int
	Recvs   int
	Bytes   int64
	Methods []MethodStat // sorted by total time, descending
	NumEMs  int
	Dropped uint64
}

// Summarize computes aggregate statistics from the recorded events.
func (t *Tracer) Summarize() Summary {
	evs := t.Snapshot()
	s := Summary{
		Wall:    t.Since(),
		PEBusy:  make([]time.Duration, len(t.shard)),
		PEIdle:  make([]time.Duration, len(t.shard)),
		Dropped: t.Dropped(),
	}
	byMethod := map[string]*MethodStat{}
	for _, e := range evs {
		switch e.Kind {
		case EvEM:
			s.NumEMs++
			if e.PE >= 0 && e.PE < len(s.PEBusy) {
				s.PEBusy[e.PE] += e.Dur
			}
			key := e.Chare + "." + e.Method
			m := byMethod[key]
			if m == nil {
				m = &MethodStat{Chare: e.Chare, Method: e.Method}
				byMethod[key] = m
			}
			m.Count++
			m.Total += e.Dur
			if e.Dur > m.Max {
				m.Max = e.Dur
			}
		case EvIdle:
			if e.PE >= 0 && e.PE < len(s.PEIdle) {
				s.PEIdle[e.PE] += e.Dur
			}
		case EvSend:
			s.Sends++
			s.Bytes += int64(e.Bytes)
		case EvRecv:
			s.Recvs++
		}
	}
	for _, m := range byMethod {
		s.Methods = append(s.Methods, *m)
	}
	sort.Slice(s.Methods, func(i, j int) bool { return s.Methods[i].Total > s.Methods[j].Total })
	return s
}

// Utilization returns each PE's busy fraction of the wall time.
func (s Summary) Utilization() []float64 {
	out := make([]float64, len(s.PEBusy))
	if s.Wall <= 0 {
		return out
	}
	for i, b := range s.PEBusy {
		out[i] = float64(b) / float64(s.Wall)
	}
	return out
}

// WriteJSON dumps the raw events as JSON (one array), Projections-log style.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Snapshot())
}

// Fprint writes a human-readable summary table.
func (s Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "wall %.3fs, %d entry methods, %d sends (%d bytes on the wire)",
		s.Wall.Seconds(), s.NumEMs, s.Sends, s.Bytes)
	if s.Dropped > 0 {
		fmt.Fprintf(w, ", %d events dropped", s.Dropped)
	}
	fmt.Fprintln(w)
	util := s.Utilization()
	for pe, u := range util {
		fmt.Fprintf(w, "  PE %-3d busy %5.1f%% (%8.3fms)\n", pe, u*100, s.PEBusy[pe].Seconds()*1000)
	}
	fmt.Fprintf(w, "  %-32s %8s %12s %12s\n", "entry method", "count", "total", "max")
	for _, m := range s.Methods {
		fmt.Fprintf(w, "  %-32s %8d %10.3fms %10.3fms\n",
			m.Chare+"."+m.Method, m.Count, m.Total.Seconds()*1000, m.Max.Seconds()*1000)
	}
}

// ---- job-wide aggregation across gathered node reports ----

// PEStat is one global PE's aggregate activity.
type PEStat struct {
	Busy    time.Duration
	Idle    time.Duration
	EMs     int
	Sends   int
	Recvs   int
	Dropped uint64 // trace events lost by this PE's ring buffer
}

// GlobalSummary aggregates the reports of every node of a job.
type GlobalSummary struct {
	TotalPEs int
	Wall     time.Duration // max over nodes
	PE       []PEStat      // indexed by global PE
	Methods  []MethodStat
	Dropped  uint64
	// CommBytes/CommMsgs are the merged TotalPEs×TotalPEs src×dst matrices
	// (nil when no report carried one).
	CommBytes []int64
	CommMsgs  []int64
}

// Aggregate merges node reports into a job-wide summary.
func Aggregate(reports []Report) GlobalSummary {
	g := GlobalSummary{}
	for _, r := range reports {
		if n := r.BasePE + r.NumPEs; n > g.TotalPEs {
			g.TotalPEs = n
		}
		if r.TotalPEs > g.TotalPEs {
			g.TotalPEs = r.TotalPEs
		}
		if r.Wall > g.Wall {
			g.Wall = r.Wall
		}
		g.Dropped += r.Dropped
	}
	g.PE = make([]PEStat, g.TotalPEs)
	byMethod := map[string]*MethodStat{}
	for _, r := range reports {
		for i, d := range r.DroppedPE {
			if gpe := r.BasePE + i; gpe >= 0 && gpe < g.TotalPEs {
				g.PE[gpe].Dropped += d
			}
		}
		for _, e := range r.Events {
			gpe := e.PE
			if gpe >= 0 && gpe < r.NumPEs {
				gpe += r.BasePE
			} else {
				gpe = -1
			}
			switch e.Kind {
			case EvEM:
				if gpe >= 0 {
					g.PE[gpe].Busy += e.Dur
					g.PE[gpe].EMs++
				}
				key := e.Chare + "." + e.Method
				m := byMethod[key]
				if m == nil {
					m = &MethodStat{Chare: e.Chare, Method: e.Method}
					byMethod[key] = m
				}
				m.Count++
				m.Total += e.Dur
				if e.Dur > m.Max {
					m.Max = e.Dur
				}
			case EvIdle:
				if gpe >= 0 {
					g.PE[gpe].Idle += e.Dur
				}
			case EvSend:
				if gpe >= 0 {
					g.PE[gpe].Sends++
				}
			case EvRecv:
				if gpe >= 0 {
					g.PE[gpe].Recvs++
				}
			}
		}
		if r.CommBytes != nil && len(r.CommBytes) == g.TotalPEs*g.TotalPEs {
			if g.CommBytes == nil {
				g.CommBytes = make([]int64, g.TotalPEs*g.TotalPEs)
				g.CommMsgs = make([]int64, g.TotalPEs*g.TotalPEs)
			}
			for i, v := range r.CommBytes {
				g.CommBytes[i] += v
			}
			for i, v := range r.CommMsgs {
				g.CommMsgs[i] += v
			}
		}
	}
	for _, m := range byMethod {
		g.Methods = append(g.Methods, *m)
	}
	sort.Slice(g.Methods, func(i, j int) bool { return g.Methods[i].Total > g.Methods[j].Total })
	return g
}

// Utilization returns each global PE's busy fraction of the wall time.
func (g GlobalSummary) Utilization() []float64 {
	out := make([]float64, len(g.PE))
	if g.Wall <= 0 {
		return out
	}
	for i := range g.PE {
		out[i] = float64(g.PE[i].Busy) / float64(g.Wall)
	}
	return out
}

// Fprint writes the job-wide utilization table, per-method grain sizes, and
// the PE×PE communication matrix.
func (g GlobalSummary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "job: %d PEs, wall %.3fs", g.TotalPEs, g.Wall.Seconds())
	if g.Dropped > 0 {
		fmt.Fprintf(w, " (%d events dropped by ring buffers)", g.Dropped)
	}
	fmt.Fprintln(w)
	util := g.Utilization()
	for pe, st := range g.PE {
		fmt.Fprintf(w, "  PE %-3d busy %5.1f%% idle %5.1f%%  ems %-7d sends %-7d recvs %d",
			pe, util[pe]*100, idleFrac(st.Idle, g.Wall)*100, st.EMs, st.Sends, st.Recvs)
		if st.Dropped > 0 {
			fmt.Fprintf(w, "  dropped %d", st.Dropped)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-32s %8s %12s %12s %12s\n", "entry method", "count", "total", "mean", "max")
	for _, m := range g.Methods {
		mean := time.Duration(0)
		if m.Count > 0 {
			mean = m.Total / time.Duration(m.Count)
		}
		fmt.Fprintf(w, "  %-32s %8d %10.3fms %10.4fms %10.3fms\n",
			m.Chare+"."+m.Method, m.Count, m.Total.Seconds()*1000, mean.Seconds()*1000, m.Max.Seconds()*1000)
	}
	g.fprintMatrix(w)
}

func idleFrac(idle, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(idle) / float64(wall)
}

// fprintMatrix prints the PE×PE wire-byte matrix (dense up to 16 PEs, top
// pairs beyond that).
func (g GlobalSummary) fprintMatrix(w io.Writer) {
	if g.CommBytes == nil {
		return
	}
	n := g.TotalPEs
	fmt.Fprintf(w, "  PE×PE wire bytes (row src → col dst):\n")
	if n <= 16 {
		fmt.Fprintf(w, "  %6s", "")
		for j := 0; j < n; j++ {
			fmt.Fprintf(w, " %8d", j)
		}
		fmt.Fprintln(w)
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, "  %6d", i)
			for j := 0; j < n; j++ {
				fmt.Fprintf(w, " %8d", g.CommBytes[i*n+j])
			}
			fmt.Fprintln(w)
		}
		return
	}
	type pair struct {
		src, dst int
		bytes    int64
	}
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if b := g.CommBytes[i*n+j]; b > 0 {
				pairs = append(pairs, pair{i, j, b})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].bytes > pairs[j].bytes })
	if len(pairs) > 10 {
		pairs = pairs[:10]
	}
	for _, p := range pairs {
		fmt.Fprintf(w, "    PE %d → PE %d: %d bytes (%d msgs)\n",
			p.src, p.dst, p.bytes, g.CommMsgs[p.src*n+p.dst])
	}
}
