package ser

// Clone returns a copy of b backed by fresh memory. It is the explicit
// alias-severing step for values produced by DecodeArgsAlias (or any other
// zero-copy decode path): an entry method that wants to keep a payload-backed
// []byte beyond its own return — in a chare field, a global, a goroutine, a
// channel — must clone it first, because the backing buffer belongs to the
// runtime's delivery path. charmvet's aliasescape rule recognizes Clone (and
// bytes.Clone) as the sanctioned fix.
//
// Like bytes.Clone, Clone of nil is nil, and Clone of an empty non-nil slice
// is an empty non-nil slice.
func Clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// CloneArgs is Clone for a decoded argument list: it returns a copy of args
// whose aliasing parts — []byte leaves, recursively through nested []any
// lists — are backed by fresh memory. Those are exactly the shapes
// DecodeArgsAlias can leave pointing into the delivery buffer; every other
// argument kind is decoded by value, so it is carried over as-is. An entry
// method that keeps its whole argument list (or a slice of it) beyond its
// return must pass it through CloneArgs first. CloneArgs of nil is nil.
func CloneArgs(args []any) []any {
	if args == nil {
		return nil
	}
	out := make([]any, len(args))
	for i, v := range args {
		switch x := v.(type) {
		case []byte:
			out[i] = Clone(x)
		case []any:
			out[i] = CloneArgs(x)
		default:
			out[i] = v
		}
	}
	return out
}
