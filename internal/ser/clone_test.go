package ser

import "testing"

func TestClone(t *testing.T) {
	if Clone(nil) != nil {
		t.Errorf("Clone(nil) must be nil")
	}
	if got := Clone([]byte{}); got == nil || len(got) != 0 {
		t.Errorf("Clone(empty) must be empty non-nil, got %#v", got)
	}
	src := []byte{1, 2, 3}
	cp := Clone(src)
	if string(cp) != string(src) {
		t.Fatalf("Clone changed contents: %v", cp)
	}
	src[0] = 9
	if cp[0] != 1 {
		t.Errorf("Clone shares backing memory with its input")
	}
}

// TestCloneSeversDecodeAlias is the contract the aliasescape rule relies on:
// a cloned DecodeArgsAlias result survives the backing buffer being reused.
func TestCloneSeversDecodeAlias(t *testing.T) {
	buf, err := AppendArgs(nil, []any{[]byte("payload")})
	if err != nil {
		t.Fatalf("AppendArgs: %v", err)
	}
	args, _, err := DecodeArgsAlias(buf)
	if err != nil {
		t.Fatalf("DecodeArgsAlias: %v", err)
	}
	aliased := args[0].([]byte)
	kept := Clone(aliased)
	for i := range buf {
		buf[i] = 0xFF // simulate the frame pool recycling the buffer
	}
	if string(kept) != "payload" {
		t.Errorf("cloned payload corrupted by buffer reuse: %q", kept)
	}
	if string(aliased) == "payload" {
		t.Errorf("fixture broken: decode did not alias the input buffer")
	}
}

// TestCloneArgs: the deep form severs []byte aliases recursively through
// nested []any lists and leaves everything else untouched.
func TestCloneArgs(t *testing.T) {
	if CloneArgs(nil) != nil {
		t.Errorf("CloneArgs(nil) must be nil")
	}
	buf, err := AppendArgs(nil, []any{[]byte("outer"), 42, []byte("inner")})
	if err != nil {
		t.Fatalf("AppendArgs: %v", err)
	}
	args, _, err := DecodeArgsAlias(buf)
	if err != nil {
		t.Fatalf("DecodeArgsAlias: %v", err)
	}
	// Nest one aliased slice a level down, as a chunked task list would.
	kept := CloneArgs([]any{args[0], args[1], []any{args[2], "s"}})
	for i := range buf {
		buf[i] = 0xFF
	}
	if string(kept[0].([]byte)) != "outer" {
		t.Errorf("top-level []byte corrupted by buffer reuse: %q", kept[0])
	}
	if kept[1].(int) != 42 {
		t.Errorf("scalar not carried over: %v", kept[1])
	}
	inner := kept[2].([]any)
	if string(inner[0].([]byte)) != "inner" {
		t.Errorf("nested []byte corrupted by buffer reuse: %q", inner[0])
	}
	if inner[1].(string) != "s" {
		t.Errorf("nested string not carried over: %v", inner[1])
	}
	if string(args[0].([]byte)) == "outer" {
		t.Errorf("fixture broken: decode did not alias the input buffer")
	}
}
