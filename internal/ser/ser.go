// Package ser implements argument and message serialization for the charmgo
// runtime. It plays the role that pickle plus the NumPy-array fast path play
// in CharmPy (paper section IV-B):
//
//   - Contiguous numeric buffers ([]float64, []int64, []byte, ...) are copied
//     directly into the message with a small type header, bypassing the
//     general-purpose serializer entirely.
//   - Primitive scalars (bool, ints, floats, strings) have compact direct
//     encodings.
//   - Everything else falls back to encoding/gob (the pickle analog), which
//     handles arbitrary registered Go types, at a cost.
//
// The wire format for an argument list is:
//
//	uvarint(count) then per argument: tag byte + tag-specific payload.
package ser

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
)

// Argument type tags.
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt   // varint, decoded as int
	tagInt64 // varint, decoded as int64
	tagFloat64
	tagString
	tagBytes
	tagF64Slice
	tagF32Slice
	tagI64Slice
	tagI32Slice
	tagIntSlice // []int encoded as 64-bit values
	tagGob      // gob-encoded payload (pickle analog)
)

// RegisterType registers a concrete type with the gob fallback codec so that
// values of that type can cross node boundaries inside interface arguments.
// It is safe to call multiple times with the same type.
func RegisterType(v any) {
	defer func() { recover() }() // gob panics on duplicate names; ignore
	gob.Register(v)
}

// EncodeArgs appends the encoded argument list to buf.
func EncodeArgs(buf *bytes.Buffer, args []any) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(args)))
	buf.Write(tmp[:n])
	for i, a := range args {
		if err := encodeOne(buf, a); err != nil {
			return fmt.Errorf("arg %d: %w", i, err)
		}
	}
	return nil
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func encodeOne(buf *bytes.Buffer, a any) error {
	switch v := a.(type) {
	case nil:
		buf.WriteByte(tagNil)
	case bool:
		if v {
			buf.WriteByte(tagTrue)
		} else {
			buf.WriteByte(tagFalse)
		}
	case int:
		buf.WriteByte(tagInt)
		putVarint(buf, int64(v))
	case int64:
		buf.WriteByte(tagInt64)
		putVarint(buf, v)
	case float64:
		buf.WriteByte(tagFloat64)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	case string:
		buf.WriteByte(tagString)
		putUvarint(buf, uint64(len(v)))
		buf.WriteString(v)
	case []byte:
		buf.WriteByte(tagBytes)
		putUvarint(buf, uint64(len(v)))
		buf.Write(v)
	case []float64:
		buf.WriteByte(tagF64Slice)
		putUvarint(buf, uint64(len(v)))
		writeF64s(buf, v)
	case []float32:
		buf.WriteByte(tagF32Slice)
		putUvarint(buf, uint64(len(v)))
		var b [4]byte
		for _, f := range v {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
			buf.Write(b[:])
		}
	case []int64:
		buf.WriteByte(tagI64Slice)
		putUvarint(buf, uint64(len(v)))
		var b [8]byte
		for _, x := range v {
			binary.LittleEndian.PutUint64(b[:], uint64(x))
			buf.Write(b[:])
		}
	case []int32:
		buf.WriteByte(tagI32Slice)
		putUvarint(buf, uint64(len(v)))
		var b [4]byte
		for _, x := range v {
			binary.LittleEndian.PutUint32(b[:], uint32(x))
			buf.Write(b[:])
		}
	case []int:
		buf.WriteByte(tagIntSlice)
		putUvarint(buf, uint64(len(v)))
		var b [8]byte
		for _, x := range v {
			binary.LittleEndian.PutUint64(b[:], uint64(x))
			buf.Write(b[:])
		}
	default:
		// gob fallback (pickle analog)
		buf.WriteByte(tagGob)
		var gb bytes.Buffer
		enc := gob.NewEncoder(&gb)
		if err := enc.Encode(&a); err != nil {
			return fmt.Errorf("gob encode %T: %w", a, err)
		}
		putUvarint(buf, uint64(gb.Len()))
		buf.Write(gb.Bytes())
	}
	return nil
}

func writeF64s(buf *bytes.Buffer, v []float64) {
	var b [8]byte
	for _, f := range v {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf.Write(b[:])
	}
}

// DecodeArgs decodes an argument list produced by EncodeArgs and returns the
// arguments and the number of bytes consumed.
func DecodeArgs(data []byte) ([]any, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("bad argument count")
	}
	pos := n
	args := make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		a, used, err := decodeOne(data[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("arg %d: %w", i, err)
		}
		pos += used
		args = append(args, a)
	}
	return args, pos, nil
}

func decodeOne(data []byte) (any, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("truncated argument")
	}
	tag := data[0]
	pos := 1
	need := func(k int) error {
		if len(data) < pos+k {
			return fmt.Errorf("truncated payload (tag %d)", tag)
		}
		return nil
	}
	readLen := func() (int, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bad length (tag %d)", tag)
		}
		pos += n
		if v > uint64(len(data)) {
			return 0, fmt.Errorf("length %d exceeds data (tag %d)", v, tag)
		}
		return int(v), nil
	}
	switch tag {
	case tagNil:
		return nil, pos, nil
	case tagFalse:
		return false, pos, nil
	case tagTrue:
		return true, pos, nil
	case tagInt:
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("bad varint")
		}
		return int(v), pos + n, nil
	case tagInt64:
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("bad varint")
		}
		return v, pos + n, nil
	case tagFloat64:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		return v, pos + 8, nil
	case tagString:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(l); err != nil {
			return nil, 0, err
		}
		return string(data[pos : pos+l]), pos + l, nil
	case tagBytes:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(l); err != nil {
			return nil, 0, err
		}
		out := make([]byte, l)
		copy(out, data[pos:pos+l])
		return out, pos + l, nil
	case tagF64Slice:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(8 * l); err != nil {
			return nil, 0, err
		}
		out := make([]float64, l)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos+8*i:]))
		}
		return out, pos + 8*l, nil
	case tagF32Slice:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(4 * l); err != nil {
			return nil, 0, err
		}
		out := make([]float32, l)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos+4*i:]))
		}
		return out, pos + 4*l, nil
	case tagI64Slice:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(8 * l); err != nil {
			return nil, 0, err
		}
		out := make([]int64, l)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(data[pos+8*i:]))
		}
		return out, pos + 8*l, nil
	case tagI32Slice:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(4 * l); err != nil {
			return nil, 0, err
		}
		out := make([]int32, l)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(data[pos+4*i:]))
		}
		return out, pos + 4*l, nil
	case tagIntSlice:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(8 * l); err != nil {
			return nil, 0, err
		}
		out := make([]int, l)
		for i := range out {
			out[i] = int(int64(binary.LittleEndian.Uint64(data[pos+8*i:])))
		}
		return out, pos + 8*l, nil
	case tagGob:
		l, err := readLen()
		if err != nil {
			return nil, 0, err
		}
		if err := need(l); err != nil {
			return nil, 0, err
		}
		var out any
		dec := gob.NewDecoder(bytes.NewReader(data[pos : pos+l]))
		if err := dec.Decode(&out); err != nil {
			return nil, 0, fmt.Errorf("gob decode: %w", err)
		}
		return out, pos + l, nil
	}
	return nil, 0, fmt.Errorf("unknown tag %d", tag)
}

// EncodeValue gob-encodes a single value (used for chare migration payloads,
// analogous to pickling a chare in CharmPy).
func EncodeValue(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeValue reverses EncodeValue.
func DecodeValue(data []byte) (any, error) {
	var out any
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
