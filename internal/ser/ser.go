// Package ser implements argument and message serialization for the charmgo
// runtime. It plays the role that pickle plus the NumPy-array fast path play
// in CharmPy (paper section IV-B):
//
//   - Contiguous numeric buffers ([]float64, []int64, []byte, ...) are copied
//     directly into the message with a small type header, bypassing the
//     general-purpose serializer entirely.
//   - Primitive scalars (bool, ints, floats, strings) have compact direct
//     encodings.
//   - Everything else falls back to encoding/gob (the pickle analog), which
//     handles arbitrary registered Go types, at a cost.
//
// The encoders are append-style (like strconv.AppendInt): they write into a
// caller-supplied byte slice so a message can be serialized exactly once
// into a pooled transport frame with no intermediate buffers.
//
// The wire format for an argument list is:
//
//	uvarint(count) then per argument: tag byte + tag-specific payload.
package ser

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
)

// Argument type tags.
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt   // varint, decoded as int
	tagInt64 // varint, decoded as int64
	tagFloat64
	tagString
	tagBytes
	tagF64Slice
	tagF32Slice
	tagI64Slice
	tagI32Slice
	tagIntSlice // []int encoded as 64-bit values
	tagGob      // gob-encoded payload (pickle analog)
)

// RegisterType registers a concrete type with the gob fallback codec so that
// values of that type can cross node boundaries inside interface arguments.
// It is safe to call multiple times with the same type.
func RegisterType(v any) {
	defer func() { recover() }() // gob panics on duplicate names; ignore
	gob.Register(v)
}

// EncodeArgs appends the encoded argument list to buf. Prefer AppendArgs on
// hot paths; this wrapper exists for callers already holding a bytes.Buffer.
func EncodeArgs(buf *bytes.Buffer, args []any) error {
	b, err := AppendArgs(buf.AvailableBuffer(), args)
	if err != nil {
		return err
	}
	buf.Write(b)
	return nil
}

// AppendArgs appends the encoded argument list to dst and returns the
// extended slice. It allocates only when dst lacks capacity (or on the gob
// fallback path).
func AppendArgs(dst []byte, args []any) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(args)))
	var err error
	for i, a := range args {
		if dst, err = appendOne(dst, a); err != nil {
			return dst, fmt.Errorf("arg %d: %w", i, err)
		}
	}
	return dst, nil
}

func appendOne(dst []byte, a any) ([]byte, error) {
	switch v := a.(type) {
	case nil:
		dst = append(dst, tagNil)
	case bool:
		if v {
			dst = append(dst, tagTrue)
		} else {
			dst = append(dst, tagFalse)
		}
	case int:
		dst = append(dst, tagInt)
		dst = binary.AppendVarint(dst, int64(v))
	case int64:
		dst = append(dst, tagInt64)
		dst = binary.AppendVarint(dst, v)
	case float64:
		dst = append(dst, tagFloat64)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	case string:
		dst = append(dst, tagString)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	case []byte:
		dst = append(dst, tagBytes)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	case []float64:
		dst = append(dst, tagF64Slice)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		for _, f := range v {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		}
	case []float32:
		dst = append(dst, tagF32Slice)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		for _, f := range v {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
		}
	case []int64:
		dst = append(dst, tagI64Slice)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
		}
	case []int32:
		dst = append(dst, tagI32Slice)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
		}
	case []int:
		dst = append(dst, tagIntSlice)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
		}
	default:
		// gob fallback (pickle analog). Encode via the type-switch variable,
		// not &a: taking the parameter's address would make every appendOne
		// call heap-allocate its argument, including the scalar fast paths.
		dst = append(dst, tagGob)
		var gb bytes.Buffer
		enc := gob.NewEncoder(&gb)
		if err := enc.Encode(&v); err != nil {
			return dst, fmt.Errorf("gob encode %T: %w", v, err)
		}
		dst = binary.AppendUvarint(dst, uint64(gb.Len()))
		dst = append(dst, gb.Bytes()...)
	}
	return dst, nil
}

// DecodeArgs decodes an argument list produced by AppendArgs/EncodeArgs and
// returns the arguments and the number of bytes consumed. It is hardened
// against hostile input: declared lengths are validated against the bytes
// actually present before any allocation or multiplication, so truncated or
// corrupt frames fail with an error rather than overflowing or exhausting
// memory.
func DecodeArgs(data []byte) ([]any, int, error) { return decodeArgs(data, false) }

// DecodeArgsAlias is DecodeArgs for callers that own data outright and keep
// it immutable for the lifetime of the decoded arguments: []byte arguments
// alias the input buffer instead of being copied out of it. The runtime uses
// it to deliver large reassembled broadcasts without an extra payload copy
// per node; the backing buffer must then be left to the garbage collector,
// never recycled.
func DecodeArgsAlias(data []byte) ([]any, int, error) { return decodeArgs(data, true) }

func decodeArgs(data []byte, alias bool) ([]any, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("bad argument count")
	}
	// Every argument occupies at least its 1-byte tag.
	if count > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("argument count %d exceeds %d remaining bytes", count, len(data)-n)
	}
	pos := n
	args := make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		a, used, err := decodeOne(data[pos:], alias)
		if err != nil {
			return nil, 0, fmt.Errorf("arg %d: %w", i, err)
		}
		pos += used
		args = append(args, a)
	}
	return args, pos, nil
}

func decodeOne(data []byte, alias bool) (any, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("truncated argument")
	}
	tag := data[0]
	pos := 1
	// readCount reads a declared element count and validates it against the
	// bytes remaining, given a fixed element size. Doing the bound check by
	// division (count > remaining/size) cannot overflow, unlike the naive
	// need(size*count).
	readCount := func(elemSize int) (int, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bad length (tag %d)", tag)
		}
		pos += n
		if v > uint64((len(data)-pos)/elemSize) {
			return 0, fmt.Errorf("declared length %d exceeds %d remaining bytes (tag %d)",
				v, len(data)-pos, tag)
		}
		return int(v), nil
	}
	switch tag {
	case tagNil:
		return nil, pos, nil
	case tagFalse:
		return false, pos, nil
	case tagTrue:
		return true, pos, nil
	case tagInt:
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("bad varint")
		}
		return int(v), pos + n, nil
	case tagInt64:
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("bad varint")
		}
		return v, pos + n, nil
	case tagFloat64:
		if len(data)-pos < 8 {
			return nil, 0, fmt.Errorf("truncated payload (tag %d)", tag)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		return v, pos + 8, nil
	case tagString:
		l, err := readCount(1)
		if err != nil {
			return nil, 0, err
		}
		return string(data[pos : pos+l]), pos + l, nil
	case tagBytes:
		l, err := readCount(1)
		if err != nil {
			return nil, 0, err
		}
		if alias {
			return data[pos : pos+l : pos+l], pos + l, nil
		}
		out := make([]byte, l)
		copy(out, data[pos:pos+l])
		return out, pos + l, nil
	case tagF64Slice:
		l, err := readCount(8)
		if err != nil {
			return nil, 0, err
		}
		out := make([]float64, l)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos+8*i:]))
		}
		return out, pos + 8*l, nil
	case tagF32Slice:
		l, err := readCount(4)
		if err != nil {
			return nil, 0, err
		}
		out := make([]float32, l)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos+4*i:]))
		}
		return out, pos + 4*l, nil
	case tagI64Slice:
		l, err := readCount(8)
		if err != nil {
			return nil, 0, err
		}
		out := make([]int64, l)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(data[pos+8*i:]))
		}
		return out, pos + 8*l, nil
	case tagI32Slice:
		l, err := readCount(4)
		if err != nil {
			return nil, 0, err
		}
		out := make([]int32, l)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(data[pos+4*i:]))
		}
		return out, pos + 4*l, nil
	case tagIntSlice:
		l, err := readCount(8)
		if err != nil {
			return nil, 0, err
		}
		out := make([]int, l)
		for i := range out {
			out[i] = int(int64(binary.LittleEndian.Uint64(data[pos+8*i:])))
		}
		return out, pos + 8*l, nil
	case tagGob:
		l, err := readCount(1)
		if err != nil {
			return nil, 0, err
		}
		var out any
		dec := gob.NewDecoder(bytes.NewReader(data[pos : pos+l]))
		if err := dec.Decode(&out); err != nil {
			return nil, 0, fmt.Errorf("gob decode: %w", err)
		}
		return out, pos + l, nil
	}
	return nil, 0, fmt.Errorf("unknown tag %d", tag)
}

// EncodeValue gob-encodes a single value (used for chare migration payloads,
// analogous to pickling a chare in CharmPy).
func EncodeValue(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeValue reverses EncodeValue.
func DecodeValue(data []byte) (any, error) {
	var out any
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
