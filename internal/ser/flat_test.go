package ser

import (
	"bytes"
	"reflect"
	"testing"
)

// flatPoint mirrors what `charmgo gen` emits for a flat struct: hand-written
// field appenders/readers registered under a wire name. The tests below pin
// the invariant the whole codegen scheme rests on — the generic appendOne
// path (which consults the flat registry) and direct generated-style
// encoding produce identical bytes, and both decoders agree.
type flatPoint struct {
	N     int
	Scale float64
	Name  string
	Grid  []int
	raw   []byte
}

const flatPointName = "ser_test.flatPoint"

func appendFlatPointFields(dst []byte, v flatPoint) []byte {
	dst = AppendCount(dst, 5)
	dst = AppendInt(dst, v.N)
	dst = AppendFloat64(dst, v.Scale)
	dst = AppendString(dst, v.Name)
	dst = AppendIntsOrNil(dst, v.Grid)
	dst = AppendBytesOrNil(dst, v.raw)
	return dst
}

func readFlatPointFields(d *Dec) flatPoint {
	var v flatPoint
	if d.Count() != 5 {
		d.Abort("flatPoint field count")
		return v
	}
	v.N = d.Int()
	v.Scale = d.Float64()
	v.Name = d.Str()
	v.Grid = d.IntsOrNil()
	v.raw = d.BytesOrNil()
	return v
}

// appendFlatPoint is the generated-style argument encoder (header + fields).
func appendFlatPoint(dst []byte, v flatPoint) []byte {
	return appendFlatPointFields(AppendFlatHeader(dst, flatPointName), v)
}

func registerFlatPoint() {
	if HasFlat(flatPoint{}) {
		return
	}
	RegisterFlat(flatPointName, flatPoint{},
		func(dst []byte, v any) ([]byte, bool) {
			x, ok := v.(flatPoint)
			if !ok {
				return dst, false
			}
			return appendFlatPointFields(dst, x), true
		},
		func(d *Dec) (any, bool) {
			v := readFlatPointFields(d)
			return v, d.Ok()
		})
}

func TestFlatRoundTrip(t *testing.T) {
	registerFlatPoint()
	cases := []flatPoint{
		{},
		{N: -3, Scale: 2.5, Name: "hello", Grid: []int{1, 2, 3}, raw: []byte{9}},
		{Grid: []int{}, raw: []byte{}}, // empty non-nil slices
	}
	for _, v := range cases {
		enc, err := AppendArgs(nil, []any{v})
		if err != nil {
			t.Fatalf("%+v: %v", v, err)
		}
		got, used, err := DecodeArgs(enc)
		if err != nil || used != len(enc) || len(got) != 1 {
			t.Fatalf("%+v: decode: %v (used %d/%d, %d args)", v, err, used, len(enc), len(got))
		}
		dec := got[0].(flatPoint)
		// Field-level nil/empty is preserved by the OrNil convention except
		// that empty and nil both carry length info; check semantic equality.
		if dec.N != v.N || dec.Scale != v.Scale || dec.Name != v.Name ||
			!reflect.DeepEqual(dec.Grid, v.Grid) || !bytes.Equal(dec.raw, v.raw) {
			t.Errorf("roundtrip mismatch: got %+v want %+v", dec, v)
		}
		if (dec.Grid == nil) != (v.Grid == nil) || (dec.raw == nil) != (v.raw == nil) {
			t.Errorf("nil-ness not preserved: got %+v want %+v", dec, v)
		}
	}
}

func TestFlatGenericAndGeneratedBytesIdentical(t *testing.T) {
	registerFlatPoint()
	v := flatPoint{N: 7, Scale: -0.25, Name: "x", Grid: []int{4, 5}}
	generic, err := AppendArgs(nil, []any{v, 42, "tail"})
	if err != nil {
		t.Fatal(err)
	}
	gen := AppendCount(nil, 3)
	gen = appendFlatPoint(gen, v)
	gen = AppendInt(gen, 42)
	gen = AppendString(gen, "tail")
	if !bytes.Equal(generic, gen) {
		t.Fatalf("generic and generated encodings differ:\n  generic %x\n  generated %x", generic, gen)
	}
	// And the typed reader agrees with the generic decoder.
	d := NewDec(gen, false)
	if d.Count() != 3 {
		t.Fatalf("Count: %v", d.Err())
	}
	got := readFlatPointValue(t, &d)
	if n := d.Int(); n != 42 {
		t.Fatalf("Int: got %d (%v)", n, d.Err())
	}
	if s := d.Str(); s != "tail" {
		t.Fatalf("Str: got %q (%v)", s, d.Err())
	}
	if !d.Ok() || d.Used() != len(gen) {
		t.Fatalf("reader state: err=%v used=%d/%d", d.Err(), d.Used(), len(gen))
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("typed read mismatch: got %+v want %+v", got, v)
	}
}

func readFlatPointValue(t *testing.T, d *Dec) flatPoint {
	t.Helper()
	if !d.FlatHeader(flatPointName) {
		t.Fatalf("FlatHeader: %v", d.Err())
	}
	return readFlatPointFields(d)
}

func TestFlatDecodeHostileInputs(t *testing.T) {
	registerFlatPoint()
	valid, err := AppendArgs(nil, []any{flatPoint{N: 1, Name: "a", Grid: []int{2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Every strict truncation of a valid flat payload must error, not panic
	// (the declared arg count can never be satisfied by fewer bytes).
	for i := 0; i < len(valid); i++ {
		if _, _, err := DecodeArgs(valid[:i]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", i, len(valid))
		}
	}
	// Unknown wire name errors cleanly.
	unknown := AppendCount(nil, 1)
	unknown = appendFlatPointFields(AppendFlatHeader(unknown, "ser_test.noSuchType"), flatPoint{})
	if _, _, err := DecodeArgs(unknown); err == nil {
		t.Error("decoding an unregistered flat name should fail")
	}
	// Wrong-name FlatHeader on the typed reader aborts and stays aborted.
	d := NewDec(valid, false)
	d.Count()
	if d.FlatHeader("ser_test.other") {
		t.Error("FlatHeader with wrong name should fail")
	}
	if d.Ok() {
		t.Error("Dec should be in error state after name mismatch")
	}
	if d.Int() != 0 || d.Ok() {
		t.Error("sticky error violated: reads after failure must return zero values")
	}
}

// FuzzFlatDifferential is the codegen contract as a fuzz target: for
// arbitrary field values, the generic registry path and the generated-style
// typed path must (1) produce byte-identical encodings, (2) decode each
// other's output, and (3) agree on the decoded value. This is what lets
// bound and unbound peers interoperate on one wire format.
func FuzzFlatDifferential(f *testing.F) {
	registerFlatPoint()
	f.Add(0, 0.0, "", []byte(nil), false, false)
	f.Add(-9, 1.75, "name", []byte{1, 0, 255}, true, true)
	f.Fuzz(func(t *testing.T, n int, scale float64, name string, gridRaw []byte, nilGrid, nilRaw bool) {
		v := flatPoint{N: n, Scale: scale, Name: name}
		if !nilGrid {
			v.Grid = make([]int, 0, len(gridRaw))
			for _, b := range gridRaw {
				v.Grid = append(v.Grid, int(b)-128)
			}
		}
		if !nilRaw {
			v.raw = append([]byte{}, gridRaw...)
		}

		generic, err := AppendArgs(nil, []any{v})
		if err != nil {
			t.Fatalf("generic encode: %v", err)
		}
		gen := appendFlatPoint(AppendCount(nil, 1), v)
		if !bytes.Equal(generic, gen) {
			t.Fatalf("encodings differ:\n  generic   %x\n  generated %x", generic, gen)
		}

		args, used, err := DecodeArgs(gen)
		if err != nil || used != len(gen) || len(args) != 1 {
			t.Fatalf("generic decode of generated bytes: %v (used %d/%d)", err, used, len(gen))
		}
		d := NewDec(generic, false)
		if d.Count() != 1 {
			t.Fatalf("Count: %v", d.Err())
		}
		if !d.FlatHeader(flatPointName) {
			t.Fatalf("FlatHeader: %v", d.Err())
		}
		typed := readFlatPointFields(&d)
		if !d.Ok() || d.Used() != len(generic) {
			t.Fatalf("typed decode of generic bytes: err=%v used=%d/%d", d.Err(), d.Used(), len(generic))
		}
		if !reflect.DeepEqual(args[0].(flatPoint), typed) {
			t.Fatalf("decoders disagree: generic %+v typed %+v", args[0], typed)
		}
		if !reflect.DeepEqual(typed, v) {
			t.Fatalf("roundtrip changed value: got %+v want %+v", typed, v)
		}
	})
}
