package ser

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzArgSeeds covers every direct-encoding tag plus hostile shapes: a
// truncated gob payload and an oversized declared count.
func fuzzArgSeeds() [][]byte {
	registerFlatPoint()
	var seeds [][]byte
	for _, args := range [][]any{
		{},
		{nil, true, false},
		{42, int64(-7), 3.14, "hello", []byte{1, 2, 3}},
		{[]float64{1, 2.5}, []float32{0.5}, []int64{-1, 1 << 40}, []int32{7}, []int{3, 4}},
		{flatPoint{N: 5, Scale: 0.5, Name: "flat", Grid: []int{1, 2}}, "tail"},
	} {
		b, err := AppendArgs(nil, args)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, b)
	}
	seeds = append(seeds,
		[]byte{1, tagGob, 4, 1, 2, 3, 4}, // garbage gob body
		[]byte{3, tagF64Slice, 0xff, 0xff, 0xff, 0x7f}, // hostile declared length
	)
	return seeds
}

// FuzzDecodeInvoke hardens the argument codec against hostile invoke
// payloads: no input may panic, over-read, or allocate from a declared
// length the data cannot back; any list that decodes must re-encode and
// decode again to the same shape (entry-method dispatch depends on it).
func FuzzDecodeInvoke(f *testing.F) {
	for _, seed := range fuzzArgSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		args, used, err := DecodeArgs(data)
		if err != nil {
			return
		}
		if used > len(data) {
			t.Fatalf("DecodeArgs consumed %d of %d bytes", used, len(data))
		}
		re, err := AppendArgs(nil, args)
		if err != nil {
			t.Fatalf("decoded args do not re-encode: %v", err)
		}
		args2, used2, err := DecodeArgs(re)
		if err != nil {
			t.Fatalf("re-encoded args do not decode: %v", err)
		}
		if used2 != len(re) || len(args2) != len(args) {
			t.Fatalf("roundtrip shape mismatch: %d/%d args, %d/%d bytes",
				len(args), len(args2), len(re), used2)
		}
	})
}

// TestGenerateArgsCorpus writes the seed payloads as committed corpus files.
// Run with CHARMGO_GEN_CORPUS=1 after changing the codec; otherwise it
// verifies the committed corpus is present.
func TestGenerateArgsCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeInvoke")
	seeds := fuzzArgSeeds()
	if os.Getenv("CHARMGO_GEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) < len(seeds) {
		t.Fatalf("committed fuzz corpus missing in %s (regenerate with CHARMGO_GEN_CORPUS=1): %v", dir, err)
	}
}
