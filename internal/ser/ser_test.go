package ser

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, args []any) []any {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeArgs(&buf, args); err != nil {
		t.Fatalf("encode %v: %v", args, err)
	}
	out, n, err := DecodeArgs(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != buf.Len() {
		t.Fatalf("decode consumed %d of %d bytes", n, buf.Len())
	}
	return out
}

func TestScalarRoundtrip(t *testing.T) {
	args := []any{
		nil, true, false, 42, int64(-7), 3.14159, "hello", "",
		int(math.MaxInt64 - 1), -1,
	}
	out := roundtrip(t, args)
	if !reflect.DeepEqual(args, out) {
		t.Errorf("roundtrip mismatch:\n got %#v\nwant %#v", out, args)
	}
}

func TestSliceRoundtrip(t *testing.T) {
	args := []any{
		[]byte{1, 2, 3},
		[]float64{1.5, -2.5, math.Inf(1)},
		[]float32{0.5, -0.25},
		[]int64{-1, 0, 1},
		[]int32{7, -8},
		[]int{100, -200, 300},
	}
	out := roundtrip(t, args)
	if !reflect.DeepEqual(args, out) {
		t.Errorf("roundtrip mismatch:\n got %#v\nwant %#v", out, args)
	}
}

// TestDecodeArgsAlias pins the zero-copy contract of the aliasing decoder:
// []byte arguments share the input buffer's backing array (no copy, full
// capacity clamp), other kinds decode identically to DecodeArgs, and the
// plain decoder still copies.
func TestDecodeArgsAlias(t *testing.T) {
	payload := []byte{10, 20, 30, 40}
	args := []any{payload, "name", 7, []float64{1.5}}
	var buf bytes.Buffer
	if err := EncodeArgs(&buf, args); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	out, n, err := DecodeArgsAlias(data)
	if err != nil || n != len(data) {
		t.Fatalf("alias decode: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(args, out) {
		t.Fatalf("alias roundtrip mismatch:\n got %#v\nwant %#v", out, args)
	}
	b := out[0].([]byte)
	if len(b) != len(payload) || cap(b) != len(payload) {
		t.Errorf("aliased []byte len/cap = %d/%d, want %d/%d (three-index clamp)",
			len(b), cap(b), len(payload), len(payload))
	}
	// Mutating the input buffer must show through the aliased argument...
	for i := 0; i+len(payload) <= len(data); i++ {
		if bytes.Equal(data[i:i+len(payload)], payload) {
			data[i] ^= 0xff
			if b[0] != payload[0]^0xff {
				t.Error("aliased []byte does not share the input buffer")
			}
			data[i] ^= 0xff
			break
		}
	}
	// ...while the plain decoder stays isolated from later buffer reuse.
	out2, _, err := DecodeArgs(data)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if !bytes.Equal(out2[0].([]byte), payload) {
		t.Error("DecodeArgs []byte aliases the input buffer; must copy")
	}
	data[0] ^= 0xff
}

func TestEmptySlices(t *testing.T) {
	args := []any{[]float64{}, []byte{}, []int{}}
	out := roundtrip(t, args)
	for i, a := range out {
		if reflect.ValueOf(a).Len() != 0 {
			t.Errorf("arg %d: got %#v", i, a)
		}
	}
}

type custom struct {
	Name  string
	Score float64
	Tags  []string
}

func TestGobFallback(t *testing.T) {
	RegisterType(custom{})
	RegisterType(map[string]int{})
	args := []any{custom{Name: "x", Score: 1.5, Tags: []string{"a", "b"}}, map[string]int{"k": 3}}
	out := roundtrip(t, args)
	if !reflect.DeepEqual(args, out) {
		t.Errorf("gob roundtrip mismatch:\n got %#v\nwant %#v", out, args)
	}
}

func TestZeroArgs(t *testing.T) {
	out := roundtrip(t, nil)
	if len(out) != 0 {
		t.Errorf("got %v", out)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeArgs(&buf, []any{[]float64{1, 2, 3}, "hello"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeArgs(full[:cut]); err == nil {
			// Some prefixes are self-consistent (e.g. fewer args); only the
			// arg count making it inconsistent must error. Verify we at
			// least never panic and never return more args than encoded.
			out, _, _ := DecodeArgs(full[:cut])
			if len(out) > 2 {
				t.Fatalf("cut %d: decoded %d args", cut, len(out))
			}
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	garbage := [][]byte{
		{}, {0xff}, {0x02, 0xff}, {0x01, 99}, {0x01, 13, 0xff, 0xff},
	}
	for _, g := range garbage {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("DecodeArgs(%v) panicked: %v", g, r)
				}
			}()
			DecodeArgs(g)
		}()
	}
}

// TestDecodeHostileLengths feeds frames whose declared element counts are
// absurdly large (including values that would overflow size*count int
// arithmetic) and checks that DecodeArgs errors instead of allocating or
// panicking.
func TestDecodeHostileLengths(t *testing.T) {
	// uvarint(2^62): multiplying by 8 overflows int64.
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40}
	sliceTags := []byte{tagString, tagBytes, tagF64Slice, tagF32Slice,
		tagI64Slice, tagI32Slice, tagIntSlice, tagGob}
	for _, tag := range sliceTags {
		frame := append([]byte{0x01, tag}, huge...)
		frame = append(frame, 1, 2, 3) // a few real bytes, far fewer than declared
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("tag %d: panicked: %v", tag, r)
				}
			}()
			if _, _, err := DecodeArgs(frame); err == nil {
				t.Errorf("tag %d: huge declared length accepted", tag)
			}
		}()
	}
	// Hostile argument count with a tiny buffer.
	if _, _, err := DecodeArgs(append([]byte{}, huge...)); err == nil {
		t.Error("huge argument count accepted")
	}
}

// TestDecodeTruncatedPerTag truncates a frame of every slice flavour at every
// byte offset; no prefix may panic or return an over-long slice.
func TestDecodeTruncatedPerTag(t *testing.T) {
	args := []any{
		"four", []byte{9, 8, 7}, []float64{1, 2}, []float32{3},
		[]int64{-4}, []int32{5, 6}, []int{7}, custom{Name: "g"},
	}
	RegisterType(custom{})
	var buf bytes.Buffer
	if err := EncodeArgs(&buf, args); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panicked: %v", cut, r)
				}
			}()
			out, _, _ := DecodeArgs(full[:cut])
			if len(out) > len(args) {
				t.Fatalf("cut %d: decoded %d args from a prefix", cut, len(out))
			}
		}()
	}
}

func TestEncodeValueRoundtrip(t *testing.T) {
	RegisterType(custom{})
	b, err := EncodeValue(custom{Name: "migrate", Score: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeValue(b)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := v.(custom)
	if !ok || c.Name != "migrate" {
		t.Errorf("got %#v", v)
	}
}

// Property: float64 slices round-trip exactly (bit-level).
func TestF64SliceProperty(t *testing.T) {
	f := func(vals []float64) bool {
		out := roundtripQ([]any{vals})
		if out == nil {
			return false
		}
		got, ok := out[0].([]float64)
		if !ok {
			return vals == nil && out[0] != nil == false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: mixed scalar tuples round-trip with types preserved.
func TestMixedArgsProperty(t *testing.T) {
	f := func(i int, i64 int64, fl float64, s string, b bool, bs []byte) bool {
		args := []any{i, i64, fl, s, b, bs}
		out := roundtripQ(args)
		if out == nil || len(out) != len(args) {
			return false
		}
		if out[0] != i || out[1] != i64 || out[3] != s || out[4] != b {
			return false
		}
		if f2, ok := out[2].(float64); !ok || math.Float64bits(f2) != math.Float64bits(fl) {
			return false
		}
		got := out[5].([]byte)
		if len(got) != len(bs) {
			return false
		}
		for k := range bs {
			if got[k] != bs[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func roundtripQ(args []any) []any {
	var buf bytes.Buffer
	if err := EncodeArgs(&buf, args); err != nil {
		return nil
	}
	out, _, err := DecodeArgs(buf.Bytes())
	if err != nil {
		return nil
	}
	return out
}
