// Flat struct codecs: the generated, reflection-free alternative to the gob
// fallback. `charmgo gen` emits a pair of encode/decode functions for each
// struct that appears in an entry-method signature and registers them here.
// Once registered, the *generic* path (AppendArgs/DecodeArgs) also routes
// values of that type through the flat codec instead of gob, so generated and
// generic encoders stay byte-identical on the wire — a node running generated
// bindings interoperates with one that only has the generic path, and the
// differential fuzzer can assert equality directly.
//
// Wire format of a flat value:
//
//	tagFlat, uvarint(len(name)), name, then the struct's exported fields
//	encoded as an ordinary argument list (uvarint field count + tagged
//	values). Slice-typed fields preserve nil-ness with an explicit tagNil,
//	matching gob's behavior for struct fields.
//
// The type name travels on the wire (like gob's registered names) so decode
// needs no out-of-band id agreement; names are the generator's package import
// path plus the type name, unique within a binary.
package ser

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// tagFlat continues the tag sequence in ser.go (tagGob is 13).
const tagFlat byte = 14

// maxFlatDepth bounds flat-in-flat nesting on decode so a hostile frame
// cannot recurse arbitrarily deep through tiny nested headers.
const maxFlatDepth = 32

// FlatEncoder appends the flat field list (count + tagged fields, *without*
// the tagFlat+name header) for v and reports whether it handled the value.
// On false it must return dst unmodified.
type FlatEncoder func(dst []byte, v any) ([]byte, bool)

// FlatDecoder reads the flat field list from d and returns the decoded value.
// On failure it returns ok=false (d records the detailed error).
type FlatDecoder func(d *Dec) (any, bool)

type flatCodec struct {
	name string
	enc  FlatEncoder
	dec  FlatDecoder
}

var (
	flatByType sync.Map // reflect.Type -> *flatCodec
	flatByName sync.Map // string -> *flatCodec
)

// RegisterFlat installs a generated flat codec for the concrete type of
// sample under the given wire name. Duplicate registration of the same name
// panics: each generated package registers exactly once from init(), so a
// duplicate means two packages chose colliding names.
func RegisterFlat(name string, sample any, enc FlatEncoder, dec FlatDecoder) {
	c := &flatCodec{name: name, enc: enc, dec: dec}
	rt := reflect.TypeOf(sample)
	if _, dup := flatByName.LoadOrStore(name, c); dup {
		panic(fmt.Sprintf("ser: duplicate flat codec name %q", name))
	}
	flatByType.Store(rt, c)
}

// HasFlat reports whether a flat codec is registered for the concrete type
// of v. Exposed for tests and the differential fuzzer.
func HasFlat(v any) bool {
	_, ok := flatByType.Load(reflect.TypeOf(v))
	return ok
}

// appendFlat encodes v through its registered flat codec, header included.
// ok=false (no codec, or codec declined) leaves dst unmodified so the caller
// can fall back to gob.
func appendFlat(dst []byte, v any) ([]byte, bool) {
	ci, ok := flatByType.Load(reflect.TypeOf(v))
	if !ok {
		return dst, false
	}
	c := ci.(*flatCodec)
	mark := len(dst)
	dst = append(dst, tagFlat)
	dst = binary.AppendUvarint(dst, uint64(len(c.name)))
	dst = append(dst, c.name...)
	out, ok := c.enc(dst, v)
	if !ok {
		return dst[:mark], false
	}
	return out, true
}

// decodeFlat decodes a flat value; data starts just past the tagFlat byte.
// Returns the value and bytes consumed (excluding the tag byte).
func decodeFlat(data []byte, alias bool, depth int) (any, int, error) {
	if depth > maxFlatDepth {
		return nil, 0, fmt.Errorf("flat value nested deeper than %d", maxFlatDepth)
	}
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("bad flat type name length")
	}
	name := string(data[n : n+int(l)])
	pos := n + int(l)
	ci, ok := flatByName.Load(name)
	if !ok {
		return nil, 0, fmt.Errorf("no flat codec registered for %q", name)
	}
	d := Dec{data: data[pos:], alias: alias, depth: depth}
	v, ok := ci.(*flatCodec).dec(&d)
	if !ok {
		if d.err == nil {
			d.err = fmt.Errorf("flat decode of %q failed", name)
		}
		return nil, 0, fmt.Errorf("flat %q: %w", name, d.err)
	}
	return v, pos + d.pos, nil
}

// ---------------------------------------------------------------------------
// Typed appenders. Each writes exactly the bytes appendOne writes for the
// same value, so generated per-signature encoders are byte-identical with the
// generic AppendArgs path. AppendCount writes the leading argument/field
// count.
// ---------------------------------------------------------------------------

// AppendCount appends the uvarint argument (or flat field) count.
func AppendCount(dst []byte, n int) []byte {
	return binary.AppendUvarint(dst, uint64(n))
}

// AppendNil appends an explicit nil argument.
func AppendNil(dst []byte) []byte { return append(dst, tagNil) }

// AppendBool appends a bool argument.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, tagTrue)
	}
	return append(dst, tagFalse)
}

// AppendInt appends an int argument.
func AppendInt(dst []byte, v int) []byte {
	dst = append(dst, tagInt)
	return binary.AppendVarint(dst, int64(v))
}

// AppendInt64 appends an int64 argument.
func AppendInt64(dst []byte, v int64) []byte {
	dst = append(dst, tagInt64)
	return binary.AppendVarint(dst, v)
}

// AppendFloat64 appends a float64 argument.
func AppendFloat64(dst []byte, v float64) []byte {
	dst = append(dst, tagFloat64)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendString appends a string argument.
func AppendString(dst []byte, v string) []byte {
	dst = append(dst, tagString)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// AppendBytes appends a []byte argument (nil encodes as length 0, like the
// generic path).
func AppendBytes(dst []byte, v []byte) []byte {
	dst = append(dst, tagBytes)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// AppendF64s appends a []float64 argument.
func AppendF64s(dst []byte, v []float64) []byte {
	dst = append(dst, tagF64Slice)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, f := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// AppendF32s appends a []float32 argument.
func AppendF32s(dst []byte, v []float32) []byte {
	dst = append(dst, tagF32Slice)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, f := range v {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
	}
	return dst
}

// AppendI64s appends an []int64 argument.
func AppendI64s(dst []byte, v []int64) []byte {
	dst = append(dst, tagI64Slice)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

// AppendI32s appends an []int32 argument.
func AppendI32s(dst []byte, v []int32) []byte {
	dst = append(dst, tagI32Slice)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
	}
	return dst
}

// AppendInts appends an []int argument.
func AppendInts(dst []byte, v []int) []byte {
	dst = append(dst, tagIntSlice)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

// AppendAny appends an arbitrary value through the full generic encoder
// (flat registry, then gob). Generated encoders use it for parameter types
// without a specialized appender.
func AppendAny(dst []byte, v any) ([]byte, error) { return appendOne(dst, v) }

// AppendFlatHeader appends the tagFlat marker and type name that precede a
// flat value's field list. Generated code writes flat values of statically
// known types with it directly, skipping the registry's reflect.TypeOf
// lookup; the bytes are identical to the generic path's.
func AppendFlatHeader(dst []byte, name string) []byte {
	dst = append(dst, tagFlat)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...)
}

// Nil-preserving slice variants, used for flat struct *fields* (gob, which
// flat codecs replace for struct values, distinguishes nil from empty).
// Top-level arguments keep the historical collapse-to-empty encoding.

// AppendBytesOrNil is AppendBytes but encodes a nil slice as tagNil.
func AppendBytesOrNil(dst []byte, v []byte) []byte {
	if v == nil {
		return append(dst, tagNil)
	}
	return AppendBytes(dst, v)
}

// AppendF64sOrNil is AppendF64s but encodes a nil slice as tagNil.
func AppendF64sOrNil(dst []byte, v []float64) []byte {
	if v == nil {
		return append(dst, tagNil)
	}
	return AppendF64s(dst, v)
}

// AppendF32sOrNil is AppendF32s but encodes a nil slice as tagNil.
func AppendF32sOrNil(dst []byte, v []float32) []byte {
	if v == nil {
		return append(dst, tagNil)
	}
	return AppendF32s(dst, v)
}

// AppendI64sOrNil is AppendI64s but encodes a nil slice as tagNil.
func AppendI64sOrNil(dst []byte, v []int64) []byte {
	if v == nil {
		return append(dst, tagNil)
	}
	return AppendI64s(dst, v)
}

// AppendI32sOrNil is AppendI32s but encodes a nil slice as tagNil.
func AppendI32sOrNil(dst []byte, v []int32) []byte {
	if v == nil {
		return append(dst, tagNil)
	}
	return AppendI32s(dst, v)
}

// AppendIntsOrNil is AppendInts but encodes a nil slice as tagNil.
func AppendIntsOrNil(dst []byte, v []int) []byte {
	if v == nil {
		return append(dst, tagNil)
	}
	return AppendInts(dst, v)
}

// ---------------------------------------------------------------------------
// Dec: a typed sequential reader over the argument wire format, for generated
// decoders. On any malformed or type-mismatched input the reader goes sticky-
// bad; the caller checks Ok() once at the end and falls back to the generic
// reflect/gob decoder, which either succeeds (pure type mismatch) or produces
// the authoritative error (corrupt frame).
// ---------------------------------------------------------------------------

// Dec reads an encoded argument list front to back.
type Dec struct {
	data  []byte
	pos   int
	alias bool
	depth int
	err   error
}

// NewDec returns a reader over data. If alias is true, []byte values alias
// the input buffer (see DecodeArgsAlias for the ownership contract).
func NewDec(data []byte, alias bool) Dec { return Dec{data: data, alias: alias} }

// Ok reports whether every read so far succeeded.
func (d *Dec) Ok() bool { return d.err == nil }

// Err returns the first error encountered, if any.
func (d *Dec) Err() error { return d.err }

// Used returns the number of bytes consumed so far.
func (d *Dec) Used() int { return d.pos }

func (d *Dec) fail(format string, a ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, a...)
	}
}

// Count reads the leading uvarint argument/field count. Returns -1 on error.
func (d *Dec) Count() int {
	if d.err != nil {
		return -1
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad argument count")
		return -1
	}
	// Every argument occupies at least its 1-byte tag.
	if v > uint64(len(d.data)-d.pos-n) {
		d.fail("argument count %d exceeds remaining bytes", v)
		return -1
	}
	d.pos += n
	return int(v)
}

// tag consumes and returns the next tag byte if it matches want.
func (d *Dec) tag(want byte) bool {
	if d.err != nil {
		return false
	}
	if d.pos >= len(d.data) {
		d.fail("truncated argument")
		return false
	}
	if d.data[d.pos] != want {
		d.fail("tag mismatch: want %d, have %d", want, d.data[d.pos])
		return false
	}
	d.pos++
	return true
}

// peekNil consumes a tagNil if present, reporting whether it did.
func (d *Dec) peekNil() bool {
	if d.err != nil || d.pos >= len(d.data) || d.data[d.pos] != tagNil {
		return false
	}
	d.pos++
	return true
}

func (d *Dec) count(elemSize int) int {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad length")
		return -1
	}
	d.pos += n
	if v > uint64((len(d.data)-d.pos)/elemSize) {
		d.fail("declared length %d exceeds remaining bytes", v)
		return -1
	}
	return int(v)
}

// Bool reads a bool argument.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.pos >= len(d.data) {
		d.fail("truncated argument")
		return false
	}
	switch d.data[d.pos] {
	case tagTrue:
		d.pos++
		return true
	case tagFalse:
		d.pos++
		return false
	}
	d.fail("tag mismatch: want bool, have %d", d.data[d.pos])
	return false
}

func (d *Dec) varint() int64 {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

// Int reads an int argument.
func (d *Dec) Int() int {
	if !d.tag(tagInt) {
		return 0
	}
	return int(d.varint())
}

// Int64 reads an int64 argument.
func (d *Dec) Int64() int64 {
	if !d.tag(tagInt64) {
		return 0
	}
	return d.varint()
}

// Float64 reads a float64 argument.
func (d *Dec) Float64() float64 {
	if !d.tag(tagFloat64) {
		return 0
	}
	if len(d.data)-d.pos < 8 {
		d.fail("truncated payload")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

// Str reads a string argument.
func (d *Dec) Str() string {
	if !d.tag(tagString) {
		return ""
	}
	l := d.count(1)
	if l < 0 {
		return ""
	}
	s := string(d.data[d.pos : d.pos+l])
	d.pos += l
	return s
}

// Bytes reads a []byte argument, aliasing the input in alias mode.
func (d *Dec) Bytes() []byte {
	if !d.tag(tagBytes) {
		return nil
	}
	return d.bytesBody()
}

func (d *Dec) bytesBody() []byte {
	l := d.count(1)
	if l < 0 {
		return nil
	}
	if d.alias {
		out := d.data[d.pos : d.pos+l : d.pos+l]
		d.pos += l
		return out
	}
	out := make([]byte, l)
	copy(out, d.data[d.pos:d.pos+l])
	d.pos += l
	return out
}

// F64s reads a []float64 argument.
func (d *Dec) F64s() []float64 {
	if !d.tag(tagF64Slice) {
		return nil
	}
	return d.f64sBody()
}

func (d *Dec) f64sBody() []float64 {
	l := d.count(8)
	if l < 0 {
		return nil
	}
	out := make([]float64, l)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos+8*i:]))
	}
	d.pos += 8 * l
	return out
}

// F32s reads a []float32 argument.
func (d *Dec) F32s() []float32 {
	if !d.tag(tagF32Slice) {
		return nil
	}
	return d.f32sBody()
}

func (d *Dec) f32sBody() []float32 {
	l := d.count(4)
	if l < 0 {
		return nil
	}
	out := make([]float32, l)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.data[d.pos+4*i:]))
	}
	d.pos += 4 * l
	return out
}

// I64s reads an []int64 argument.
func (d *Dec) I64s() []int64 {
	if !d.tag(tagI64Slice) {
		return nil
	}
	return d.i64sBody()
}

func (d *Dec) i64sBody() []int64 {
	l := d.count(8)
	if l < 0 {
		return nil
	}
	out := make([]int64, l)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(d.data[d.pos+8*i:]))
	}
	d.pos += 8 * l
	return out
}

// I32s reads an []int32 argument.
func (d *Dec) I32s() []int32 {
	if !d.tag(tagI32Slice) {
		return nil
	}
	return d.i32sBody()
}

func (d *Dec) i32sBody() []int32 {
	l := d.count(4)
	if l < 0 {
		return nil
	}
	out := make([]int32, l)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.data[d.pos+4*i:]))
	}
	d.pos += 4 * l
	return out
}

// Ints reads an []int argument.
func (d *Dec) Ints() []int {
	if !d.tag(tagIntSlice) {
		return nil
	}
	return d.intsBody()
}

func (d *Dec) intsBody() []int {
	l := d.count(8)
	if l < 0 {
		return nil
	}
	out := make([]int, l)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(d.data[d.pos+8*i:])))
	}
	d.pos += 8 * l
	return out
}

// Nil-preserving slice readers, pairing the *OrNil appenders for flat struct
// fields.

// BytesOrNil reads a []byte field that may be an explicit nil.
func (d *Dec) BytesOrNil() []byte {
	if d.peekNil() {
		return nil
	}
	return d.Bytes()
}

// F64sOrNil reads a []float64 field that may be an explicit nil.
func (d *Dec) F64sOrNil() []float64 {
	if d.peekNil() {
		return nil
	}
	return d.F64s()
}

// F32sOrNil reads a []float32 field that may be an explicit nil.
func (d *Dec) F32sOrNil() []float32 {
	if d.peekNil() {
		return nil
	}
	return d.F32s()
}

// I64sOrNil reads an []int64 field that may be an explicit nil.
func (d *Dec) I64sOrNil() []int64 {
	if d.peekNil() {
		return nil
	}
	return d.I64s()
}

// I32sOrNil reads an []int32 field that may be an explicit nil.
func (d *Dec) I32sOrNil() []int32 {
	if d.peekNil() {
		return nil
	}
	return d.I32s()
}

// IntsOrNil reads an []int field that may be an explicit nil.
func (d *Dec) IntsOrNil() []int {
	if d.peekNil() {
		return nil
	}
	return d.Ints()
}

// FlatHeader consumes a flat value's tagFlat marker and type name,
// verifying the name matches. Generated decoders of statically known flat
// types use it in place of the registry's name lookup.
func (d *Dec) FlatHeader(name string) bool {
	if !d.tag(tagFlat) {
		return false
	}
	l := d.count(1)
	if l < 0 {
		return false
	}
	got := d.data[d.pos : d.pos+l]
	d.pos += l
	if string(got) != name {
		d.fail("flat type mismatch: want %q, have %q", name, got)
		return false
	}
	return true
}

// Abort marks the reader failed. Generated decoders use it for structural
// mismatches the typed readers cannot express, such as an unexpected field
// count.
func (d *Dec) Abort(msg string) { d.fail("%s", msg) }

// Any reads one argument of arbitrary type through the full generic decoder
// (including gob and nested flat values). Generated decoders use it for
// parameter types without a specialized reader.
func (d *Dec) Any() any {
	if d.err != nil {
		return nil
	}
	v, used, err := decodeOneDepth(d.data[d.pos:], d.alias, d.depth+1)
	if err != nil {
		d.fail("%v", err)
		return nil
	}
	d.pos += used
	return v
}
