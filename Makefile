GO ?= go

.PHONY: all build test check race bench vet

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the CI gate for the concurrency-sensitive packages: vet the whole
# module, then run the runtime core and transport under the race detector.
check: vet
	$(GO) test -race ./internal/core/... ./internal/transport/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkRemoteInvokeRate -benchtime 2s .
	$(GO) test -run xxx -bench 'BenchmarkEncodeMsgInvoke|BenchmarkDecodeMsgInvoke|BenchmarkMailbox' ./internal/core/
