GO ?= go

.PHONY: all build test check race bench vet profile

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the CI gate for the concurrency-sensitive packages: vet the whole
# module, then run the runtime core, transport, and metrics registry under
# the race detector.
check: vet
	$(GO) test -race ./internal/core/... ./internal/transport/... ./internal/metrics/... ./internal/trace/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkRemoteInvokeRate -benchtime 2s .
	$(GO) test -run xxx -bench 'BenchmarkEncodeMsgInvoke|BenchmarkDecodeMsgInvoke|BenchmarkMailbox' ./internal/core/

# profile runs a traced 2-process stencil3d job under charmrun and validates
# that the exported timeline is well-formed Chrome trace-event JSON.
profile:
	$(GO) build -o /tmp/charmgo-stencil3d ./examples/stencil3d
	$(GO) build -o /tmp/charmgo-charmrun ./cmd/charmrun
	$(GO) build -o /tmp/charmgo-tracecheck ./cmd/tracecheck
	/tmp/charmgo-charmrun -np 2 -pes 2 -baseport 42160 -trace /tmp/charmgo-stencil.json /tmp/charmgo-stencil3d
	/tmp/charmgo-tracecheck /tmp/charmgo-stencil.json
