GO ?= go

.PHONY: all build test check lint charmvet vet-baseline race fuzz bench collectives vet profile chaos gen gencheck bench/dispatch bench/manychares introspect serve serving

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# charmvet enforces the CharmGo model invariants the compiler cannot see
# (entry-method signatures, gob safety, PE-blocking calls, nil-guarded
# instrumentation, wire-buffer ownership, zero-copy alias lifetimes,
# migration safety, entry-method races). See DESIGN.md §3.3 and §3.7.
# The JSON report is schema-checked by vetcheck, which fails on any finding
# not recorded in the committed baseline (charmvet_baseline.json).
charmvet:
	$(GO) run ./cmd/charmvet -json -baseline charmvet_baseline.json ./... | $(GO) run ./cmd/vetcheck

# vet-baseline regenerates charmvet_baseline.json from the current findings,
# keeping justifications for entries that still occur. Use it only to accept
# a finding deliberately — fixes should delete entries, and charmvet warns
# about stale ones.
vet-baseline:
	$(GO) run ./cmd/charmvet -baseline charmvet_baseline.json -write-baseline ./...

lint: vet charmvet

# gen (re)writes charmgo_gen.go typed dispatch/codec bindings for every
# package defining chare types — the charmxi analog (DESIGN.md §codegen).
# gencheck verifies the committed bindings are fresh without writing; it is
# part of `make check` so entry-method drift fails CI.
gen:
	$(GO) run ./cmd/charmgo gen ./...

gencheck:
	$(GO) run ./cmd/charmgo gen -check ./...

# chaos runs the fault-tolerance suite (failure detection, buddy
# checkpointing, kill-one-node recovery, chaos transport) under the race
# detector. See DESIGN.md §3.4 and EXPERIMENTS.md.
chaos:
	$(GO) test -race -count=1 ./internal/ft/

# serve is the elastic-serving smoke (DESIGN.md §3.8): a 3-node kvservice
# cluster absorbs one planned node join and one planned node leave under
# continuous load, and the run must end with zero lost requests, every key
# readable, a finite p99 and no failure-detector false positives.
serve:
	$(GO) run ./examples/kvservice -check -seconds 6

# serving regenerates BENCH_serving.json (open-loop latency/saturation cells
# incl. join-mid-run and leave-mid-run; see EXPERIMENTS.md §serving).
serving:
	$(GO) run ./cmd/kvbench

# check is the CI gate: build everything, lint (go vet + charmvet), verify
# generated bindings are fresh, run the full test suite under the race
# detector, then the chaos/recovery suite, the live-introspection smoke and
# the elastic-serving smoke.
check: build lint gencheck
	$(GO) test -race ./...
	$(MAKE) chaos
	$(MAKE) introspect
	$(MAKE) serve

race:
	$(GO) test -race ./...

# fuzz runs each native fuzz target briefly against the committed seed
# corpora plus fresh mutations; CI-sized smoke, not a campaign.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzDecodeInvoke -fuzztime 10s ./internal/ser

bench:
	$(GO) test -run xxx -bench BenchmarkRemoteInvokeRate -benchtime 2s .
	$(GO) test -run xxx -bench 'BenchmarkEncodeMsgInvoke|BenchmarkDecodeMsgInvoke|BenchmarkMailbox' ./internal/core/
	$(GO) test -run xxx -bench BenchmarkBroadcastReduce -benchtime 20x .
	$(GO) run ./cmd/collectivebench
	$(GO) run ./cmd/dispatchbench
	$(GO) run ./cmd/manychares

# bench/dispatch regenerates only BENCH_dispatch.json (generated bindings vs
# reflective dispatch, mem/TCP transports; see EXPERIMENTS.md §dispatch) and
# prints the go-bench ablation including the gob-fallback struct rows.
bench/dispatch:
	$(GO) test -run xxx -bench 'BenchmarkDispatch' -benchtime 2000x .
	$(GO) run ./cmd/dispatchbench

# bench/manychares regenerates BENCH_manychares.json: the overdecomposition
# sweep (scheduler mode × placement × grain × GOMAXPROCS, up to 1M chares)
# that gates the lock-free mailbox and work-stealing scheduler. See
# EXPERIMENTS.md §manychares for the protocol and acceptance bars.
bench/manychares:
	$(GO) run ./cmd/manychares

# collectives regenerates only BENCH_collectives.json (spanning-tree vs flat
# broadcast+reduce; see EXPERIMENTS.md §collectives for the protocol).
collectives:
	$(GO) run ./cmd/collectivebench

# profile runs a traced 2-process stencil3d job under charmrun and validates
# that the exported timeline is well-formed Chrome trace-event JSON.
profile:
	$(GO) build -o /tmp/charmgo-stencil3d ./examples/stencil3d
	$(GO) build -o /tmp/charmgo-charmrun ./cmd/charmrun
	$(GO) build -o /tmp/charmgo-tracecheck ./cmd/tracecheck
	/tmp/charmgo-charmrun -np 2 -pes 2 -baseport 42160 -trace /tmp/charmgo-stencil.json /tmp/charmgo-stencil3d
	/tmp/charmgo-tracecheck /tmp/charmgo-stencil.json

# introspect is the live-introspection smoke (DESIGN.md §3.6): launch the
# kvstore example across 3 processes with CCS sampling on, scrape node 0's
# /introspect while the job runs, schema-check the cluster snapshot
# (introspectcheck also does one `charmgo top -json`-equivalent fetch of the
# live trace window), validate that window with tracecheck, then let the job
# finish cleanly.
introspect:
	$(GO) build -o /tmp/charmgo-kvstore ./examples/kvstore
	$(GO) build -o /tmp/charmgo-charmrun ./cmd/charmrun
	$(GO) build -o /tmp/charmgo-tool ./cmd/charmgo
	$(GO) build -o /tmp/charmgo-introspectcheck ./cmd/introspectcheck
	$(GO) build -o /tmp/charmgo-tracecheck ./cmd/tracecheck
	/tmp/charmgo-charmrun -np 3 -pes 2 -baseport 42180 -ccs-addr 127.0.0.1:9390 \
		/tmp/charmgo-kvstore -seconds 15 -shards 24 & \
	CRPID=$$!; \
	sleep 4; \
	/tmp/charmgo-tool top -json 127.0.0.1:9390 > /tmp/charmgo-introspect.json && \
	/tmp/charmgo-introspectcheck -nodes 3 /tmp/charmgo-introspect.json && \
	/tmp/charmgo-introspectcheck -nodes 3 -trace-out /tmp/charmgo-introwindow.json -window 3s \
		http://127.0.0.1:9390/introspect && \
	/tmp/charmgo-tracecheck /tmp/charmgo-introwindow.json; \
	RC=$$?; wait $$CRPID || RC=1; exit $$RC
