// Command charmvet reports violations of CharmGo's programming-model
// invariants that the Go compiler cannot see: entry methods are invoked by
// reflection, messages travel through gob, and wire buffers are pooled, so
// a signature the dispatcher cannot call, a struct gob silently truncates,
// a blocking call on the PE scheduler, an unguarded trace hook, or a buffer
// reused after its ownership moved all compile cleanly and fail at runtime.
//
// Usage:
//
//	charmvet [-checks list] [-list] [packages]
//
// Package patterns follow the go tool: ./... for the whole module, a
// directory path for one package. With no arguments, ./... is assumed.
// Exit status is 1 when diagnostics were reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"charmgo/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: charmvet [-checks entrysig,gobsafe,...] [-list] [packages]\n\nChecks:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "charmvet: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
		os.Exit(2)
	}
	mod, err := analysis.LoadModule(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := mod.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(analyzers, pkgs, mod.Fset)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
