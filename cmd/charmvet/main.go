// Command charmvet reports violations of CharmGo's programming-model
// invariants that the Go compiler cannot see: entry methods are invoked by
// reflection, messages travel through pooled wire buffers, and chares
// migrate by serialization, so a signature the dispatcher cannot call, a
// struct gob silently truncates, a blocking call on the PE scheduler, a
// buffer reused after its ownership moved, a retained alias of a zero-copy
// payload, non-migratable chare state, or a goroutine racing entry methods
// all compile cleanly and fail at runtime.
//
// Usage:
//
//	charmvet [-checks list] [-list] [-json] [-baseline file] [-write-baseline] [packages]
//
// Package patterns follow the go tool: ./... for the whole module, a
// directory path for one package. With no arguments, ./... is assumed.
//
// -json emits a machine-readable report (schema: internal/analysis.Report,
// validated by cmd/vetcheck) instead of the line-oriented text form. Each
// finding carries the rule's stable ID (CV001..); IDs never change even if
// a rule is renamed. -baseline subtracts the committed suppression file
// before deciding the exit status, so CI enforces "no new findings";
// -write-baseline regenerates that file from the current findings,
// preserving justifications for entries that are still live.
//
// Exit status is 1 when (non-baselined) diagnostics were reported, 2 on
// load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"charmgo/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (see cmd/vetcheck)")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings to subtract")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the -baseline file from current findings and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: charmvet [-checks entrysig,gobsafe,...] [-list] [-json] [-baseline file] [-write-baseline] [packages]\n\nChecks:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %s %-11s %s\n", a.ID, a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%s %-11s %s\n", a.ID, a.Name, a.Doc)
		}
		return
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintf(os.Stderr, "charmvet: -write-baseline requires -baseline\n")
		os.Exit(2)
	}

	analyzers := analysis.All
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				a = analysis.ByID(name)
			}
			if a == nil {
				fmt.Fprintf(os.Stderr, "charmvet: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
		os.Exit(2)
	}
	mod, err := analysis.LoadModule(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := mod.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(analyzers, pkgs, mod.Fset)
	findings := make([]analysis.Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, analysis.NewFinding(d, mod.Root))
	}

	if *writeBaseline {
		prev, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
			os.Exit(2)
		}
		if err := analysis.WriteBaseline(*baselinePath, findings, prev); err != nil {
			fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "charmvet: wrote %s (%d entries)\n", *baselinePath, len(findings))
		return
	}

	fresh := findings
	if *baselinePath != "" {
		base, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
			os.Exit(2)
		}
		fresh, _ = base.Filter(findings)
		for _, e := range base.Stale(findings) {
			fmt.Fprintf(os.Stderr, "charmvet: stale baseline entry (finding no longer occurs): %s %s: %s\n", e.Rule, e.File, e.Message)
		}
	}

	if *jsonOut {
		rep := analysis.Report{Version: analysis.ReportVersion, Findings: fresh}
		if rep.Findings == nil {
			rep.Findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fmt.Fprintf(os.Stderr, "charmvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range fresh {
			fmt.Printf("%s:%d:%d: [%s %s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Check, f.Message)
		}
	}
	if len(fresh) > 0 {
		os.Exit(1)
	}
}
