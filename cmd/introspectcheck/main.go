// Introspectcheck validates a /introspect cluster snapshot — either fetched
// live from a running job's debug endpoint or read from a file (e.g. the
// output of `charmgo top -json`). It checks the JSON schema the introspect
// package serves: node count, a view per node, in-range PE samples with
// sane utilization, and (for nodes that have reported) a consistent BasePE
// layout. Used by `make introspect` to gate the live-introspection smoke
// run:
//
//	go run ./cmd/introspectcheck -nodes 3 http://127.0.0.1:9300/introspect
//	go run ./cmd/introspectcheck -nodes 3 /tmp/introspect.json
//
// With -trace-out the tool also fetches /introspect/trace (the live Chrome
// export) from the same endpoint and writes it to the named file, so the
// smoke target can hand it to cmd/tracecheck. Exit status is 0 for a valid
// snapshot, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"charmgo/internal/introspect"
)

func main() {
	nodes := flag.Int("nodes", 0, "expected node count (0 = accept any)")
	reported := flag.Int("reported", -1, "minimum nodes with a live sample (-1 = all)")
	traceOut := flag.String("trace-out", "", "also fetch /introspect/trace and write it here (URL input only)")
	window := flag.Duration("window", 5*time.Second, "trace window to request with -trace-out")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: introspectcheck [-nodes N] [-reported M] [-trace-out f.json] <url-or-file>")
		os.Exit(2)
	}
	src := flag.Arg(0)

	data, isURL, err := load(src)
	if err != nil {
		fail("%v", err)
	}
	var s introspect.ClusterSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		fail("%s: not valid /introspect JSON: %v", src, err)
	}

	if *nodes > 0 && s.Nodes != *nodes {
		fail("%s: nodes = %d, want %d", src, s.Nodes, *nodes)
	}
	if len(s.Node) != s.Nodes {
		fail("%s: %d node views for %d nodes", src, len(s.Node), s.Nodes)
	}
	if s.TotalPEs <= 0 {
		fail("%s: totalPEs = %d", src, s.TotalPEs)
	}
	if s.SampleInterval <= 0 {
		fail("%s: sampleIntervalNanos = %d (sampling not enabled?)", src, s.SampleInterval)
	}

	live := 0
	for i, nv := range s.Node {
		if nv.Missing || nv.Dead {
			continue
		}
		live++
		if nv.Node != i {
			fail("%s: view %d reports node id %d", src, i, nv.Node)
		}
		if nv.Seq <= 0 {
			fail("%s: node %d: seq = %d", src, i, nv.Seq)
		}
		if len(nv.PEs) == 0 {
			fail("%s: node %d: no PE samples", src, i)
		}
		if nv.TotalPEs != s.TotalPEs {
			fail("%s: node %d: totalPEs = %d, cluster says %d", src, i, nv.TotalPEs, s.TotalPEs)
		}
		for j, pe := range nv.PEs {
			if want := nv.BasePE + j; pe.PE != want {
				fail("%s: node %d PE sample %d: pe = %d, want %d", src, i, j, pe.PE, want)
			}
			if pe.Util < 0 || pe.Util > 1 {
				fail("%s: node %d PE %d: util = %v out of [0,1]", src, i, pe.PE, pe.Util)
			}
			if pe.MailboxDepth < 0 || pe.BusyNanos < 0 || pe.TotalEMs < 0 || pe.TotalRecvs < 0 {
				fail("%s: node %d PE %d: negative counter", src, i, pe.PE)
			}
		}
		for _, cs := range nv.Colls {
			for _, h := range cs.Hot {
				if h.LoadMillis < 0 {
					fail("%s: node %d coll %d: negative element load", src, i, cs.CID)
				}
			}
		}
	}
	want := *reported
	if want < 0 {
		want = s.Nodes
	}
	if live < want {
		fail("%s: only %d of %d nodes have live samples (want >= %d)", src, live, s.Nodes, want)
	}

	if *traceOut != "" {
		if !isURL {
			fail("-trace-out requires a URL input (got file %s)", src)
		}
		turl := strings.TrimSuffix(src, "/introspect") + fmt.Sprintf("/introspect/trace?window=%s", *window)
		body, err := fetch(turl)
		if err != nil {
			fail("trace window: %v", err)
		}
		if err := os.WriteFile(*traceOut, body, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("introspectcheck: wrote %s (%d bytes of live trace window)\n", *traceOut, len(body))
	}
	fmt.Printf("introspectcheck: OK: %d nodes, %d PEs, %d live, interval %s\n",
		s.Nodes, s.TotalPEs, live, s.SampleInterval)
}

func load(src string) (data []byte, isURL bool, err error) {
	if strings.Contains(src, "://") {
		b, err := fetch(src)
		return b, true, err
	}
	b, err := os.ReadFile(src)
	return b, false, err
}

func fetch(url string) ([]byte, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "introspectcheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
