// Command vetcheck validates a `charmvet -json` report and gates CI on it.
// It reads the report from stdin (or a file argument), checks the document
// against the published schema — known version, well-formed stable rule IDs
// that resolve to registered analyzers, check names that match the rule,
// module-relative slash-separated paths, 1-based positions, non-empty
// messages — and exits non-zero if the report is malformed or contains any
// findings. charmvet has already subtracted the committed baseline, so a
// finding here is a new violation.
//
// Usage:
//
//	charmvet -json -baseline charmvet_baseline.json ./... | vetcheck
//	vetcheck report.json
//
// Exit status: 0 for a valid, empty report; 1 for a valid report with
// findings; 2 for a malformed report or read error.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"charmgo/internal/analysis"
)

func main() {
	var (
		data []byte
		err  error
		src  = "<stdin>"
	)
	switch len(os.Args) {
	case 1:
		data, err = io.ReadAll(os.Stdin)
	case 2:
		src = os.Args[1]
		data, err = os.ReadFile(src)
	default:
		fmt.Fprintf(os.Stderr, "usage: vetcheck [report.json]  (default: stdin)\n")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetcheck: %v\n", err)
		os.Exit(2)
	}

	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var rep analysis.Report
	if err := dec.Decode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "vetcheck: %s: bad report: %v\n", src, err)
		os.Exit(2)
	}
	if dec.More() {
		fmt.Fprintf(os.Stderr, "vetcheck: %s: trailing data after report\n", src)
		os.Exit(2)
	}

	bad := func(i int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "vetcheck: %s: finding %d: %s\n", src, i, fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if rep.Version != analysis.ReportVersion {
		fmt.Fprintf(os.Stderr, "vetcheck: %s: report version %d, want %d\n", src, rep.Version, analysis.ReportVersion)
		os.Exit(2)
	}
	if rep.Findings == nil {
		fmt.Fprintf(os.Stderr, "vetcheck: %s: findings must be a list, not null\n", src)
		os.Exit(2)
	}
	for i, f := range rep.Findings {
		if !analysis.RuleIDPattern.MatchString(f.Rule) {
			bad(i, "malformed rule ID %q", f.Rule)
		}
		a := analysis.ByID(f.Rule)
		if a == nil {
			bad(i, "unknown rule ID %q", f.Rule)
		}
		if f.Check != a.Name {
			bad(i, "check %q does not match rule %s (%s)", f.Check, f.Rule, a.Name)
		}
		if f.File == "" || strings.Contains(f.File, "\\") || strings.HasPrefix(f.File, "/") {
			bad(i, "file %q is not a module-relative slash path", f.File)
		}
		if f.Line < 1 || f.Col < 1 {
			bad(i, "position %d:%d is not 1-based", f.Line, f.Col)
		}
		if f.Message == "" {
			bad(i, "empty message")
		}
	}

	if n := len(rep.Findings); n > 0 {
		for _, f := range rep.Findings {
			fmt.Fprintf(os.Stderr, "vetcheck: new finding: %s:%d:%d: [%s %s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Check, f.Message)
		}
		fmt.Fprintf(os.Stderr, "vetcheck: %d new finding(s); fix them or regenerate the baseline (make vet-baseline) with a justification\n", n)
		os.Exit(1)
	}
}
