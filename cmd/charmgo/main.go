// Command charmgo is the CharmGo developer tool.
//
// The gen subcommand emits charmgo_gen.go binding files: typed entry-method
// dispatch and argument codecs that replace reflection and gob on the
// remote-invoke hot path — the role charmxi's generated stubs play for
// Charm++.
//
// The top subcommand is an htop-style live view of a running job's
// /introspect endpoint (see top.go).
//
// Usage:
//
//	charmgo gen [-check] [-v] [packages]
//	charmgo top [-json] [-interval DUR] [-topk N] [http://host:port]
//
// Package patterns follow the go tool: ./... for the whole module, a
// directory path for one package. With no arguments, ./... is assumed.
// Packages that define no chare types are skipped (a leftover
// charmgo_gen.go in such a package is reported as stale).
//
// With -check, no files are written; instead the tool exits 1 if any
// generated file is missing, stale, or orphaned — `make check` uses this to
// keep committed bindings fresh.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"charmgo/internal/analysis"
	"charmgo/internal/gen"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "gen":
		runGen(args[1:])
	case "top":
		runTop(args[1:])
	default:
		usage()
		os.Exit(2)
	}
}

func runGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	check := fs.Bool("check", false, "verify committed bindings are fresh; write nothing")
	verbose := fs.Bool("v", false, "log every package visited")
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := mod.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	stale := 0
	for _, pkg := range pkgs {
		// The runtime package itself keeps the reflective path: its only
		// chare-like types are internal, and generated bindings registering
		// into their own defining package would add nothing.
		if pkg.ImportPath == analysis.CorePkgPath {
			continue
		}
		out, err := gen.Generate(pkg)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", pkg.ImportPath, err))
		}
		path := filepath.Join(pkg.Dir, gen.GenFileName)
		prev, readErr := os.ReadFile(path)
		switch {
		case out == nil:
			if readErr == nil {
				if *check {
					fmt.Fprintf(os.Stderr, "charmgo gen: %s is orphaned (package has no chare types)\n", path)
					stale++
				} else {
					if err := os.Remove(path); err != nil {
						fatal(err)
					}
					fmt.Printf("removed %s (no chare types)\n", path)
				}
			} else if *verbose {
				fmt.Printf("skipped %s (no chare types)\n", pkg.ImportPath)
			}
		case readErr == nil && bytes.Equal(prev, out):
			if *verbose {
				fmt.Printf("fresh   %s\n", path)
			}
		case *check:
			why := "stale"
			if readErr != nil {
				why = "missing"
			}
			fmt.Fprintf(os.Stderr, "charmgo gen: %s is %s (run `make gen`)\n", path, why)
			stale++
		default:
			if err := os.WriteFile(path, out, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote   %s\n", path)
		}
	}
	if stale > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: charmgo <command> [flags]

Commands:
  gen [-check] [-v] [packages]
        Generate charmgo_gen.go typed dispatch/codec bindings for every
        package defining chare types. -check verifies freshness without
        writing (exit 1 on stale, missing, or orphaned bindings).
  top [-json] [-interval DUR] [-topk N] [url]
        Live htop-style view of a running job's /introspect endpoint
        (default http://127.0.0.1:9300). -json prints one raw snapshot
        and exits.
`)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "charmgo: %v\n", err)
	os.Exit(2)
}
