package main

// charmgo top: an htop-style live view over a running job's /introspect
// endpoint (the CCS-style introspection layer, DESIGN.md §3.6). It polls
// node 0's debug endpoint at the job's sample interval and repaints per-PE
// utilization bars, mailbox depths, the job-wide hottest chares and the
// PE×PE comm-matrix deltas. With -json it prints one raw ClusterSnapshot
// and exits (the smoke tests and scripts consume this).

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"charmgo/internal/introspect"
)

const defaultTopURL = "http://127.0.0.1:9300"

func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	jsonOnce := fs.Bool("json", false, "print one raw /introspect snapshot as JSON and exit")
	interval := fs.Duration("interval", 0, "refresh period (0 = the job's sample interval)")
	topK := fs.Int("topk", 10, "rows in the hottest-chares table")
	fs.Parse(args)
	url := defaultTopURL
	if fs.NArg() > 0 {
		url = strings.TrimRight(fs.Arg(0), "/")
	}
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}

	if *jsonOnce {
		body, err := fetchRaw(url + "/introspect")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
		return
	}

	// Live mode: repaint until interrupted (or the job goes away).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var prev *introspect.ClusterSnapshot
	failures := 0
	for {
		snap, err := fetchSnapshot(url + "/introspect")
		if err != nil {
			failures++
			if failures >= 3 {
				fatal(fmt.Errorf("lost %s: %v", url, err))
			}
		} else {
			failures = 0
			view := introspect.Render(*snap, introspect.RenderOptions{TopK: *topK, Prev: prev})
			// ANSI clear + home keeps the repaint flicker-free without
			// pulling in a terminal library.
			fmt.Print("\033[H\033[2J" + view)
			prev = snap
		}
		wait := *interval
		if wait <= 0 {
			wait = 250 * time.Millisecond
			if snap != nil && snap.SampleInterval > 0 {
				wait = snap.SampleInterval
			}
		}
		select {
		case <-sig:
			fmt.Println()
			return
		case <-time.After(wait):
		}
	}
}

func fetchRaw(url string) ([]byte, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func fetchSnapshot(url string) (*introspect.ClusterSnapshot, error) {
	body, err := fetchRaw(url)
	if err != nil {
		return nil, err
	}
	var s introspect.ClusterSnapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, fmt.Errorf("bad /introspect JSON: %v", err)
	}
	return &s, nil
}
