// Leanmd is the command-line driver for the LeanMD mini-app (paper section
// V-C).
//
//	go run ./cmd/leanmd -cells 3 -percell 10 -steps 50 -pes 4
//	go run ./cmd/leanmd -dispatch dynamic
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"charmgo/internal/core"
	"charmgo/internal/leanmd"
	"charmgo/internal/trace"
)

func main() {
	cells := flag.Int("cells", 3, "cells per dimension (>= 3)")
	perCell := flag.Int("percell", 10, "particles per cell")
	steps := flag.Int("steps", 20, "MD timesteps")
	dt := flag.Float64("dt", 5e-4, "timestep")
	pes := flag.Int("pes", 4, "PEs")
	migrate := flag.Int("migrate", 4, "atom exchange period in steps (0 = off)")
	dispatch := flag.String("dispatch", "static", "dispatch mode: static (Charm++ model) or dynamic (CharmPy model)")
	verify := flag.Bool("verify", true, "compare against the sequential reference")
	traceRun := flag.Bool("trace", false, "print a Projections-style trace summary")
	traceOut := flag.String("traceout", "", "write a Chrome trace-event timeline to this file (implies -trace)")
	flag.Parse()

	p := leanmd.DefaultParams()
	p.CX, p.CY, p.CZ = *cells, *cells, *cells
	p.PerCell = *perCell
	p.Steps = *steps
	p.DT = *dt
	p.MigrateEvery = *migrate

	cfg := core.Config{PEs: *pes}
	var tracer *trace.Tracer
	if *traceRun || *traceOut != "" {
		tracer = trace.New(*pes)
		cfg.Trace = tracer
	}
	switch *dispatch {
	case "static":
	case "dynamic":
		cfg.Dispatch = core.DynamicDispatch
	default:
		fmt.Fprintf(os.Stderr, "unknown dispatch mode %q\n", *dispatch)
		os.Exit(2)
	}

	res, err := leanmd.RunCharm(p, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("LeanMD (%s dispatch): %d cells + %d computes on %d PEs, %d particles\n",
		*dispatch, res.Cells, res.Computes, res.PEs, res.Summary.Particles)
	fmt.Printf("time per step: %.3f ms (wall %.3f s)\n", res.TimePerStepMS, res.WallSeconds)
	fmt.Printf("kinetic energy: %.6f   momentum: (%.2e, %.2e, %.2e)\n",
		res.Summary.KE, res.Summary.Px, res.Summary.Py, res.Summary.Pz)

	if tracer != nil {
		fmt.Println("\ntrace summary:")
		tracer.Summarize().Fprint(os.Stdout)
	}
	if *traceOut != "" && tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := trace.WriteChrome(f, tracer.Report(0))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("timeline written to %s (open in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *verify {
		ref, err := leanmd.RunSequential(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rel := math.Abs(res.Summary.KE-ref.KE) / math.Max(ref.KE, 1e-12)
		if res.Summary.Particles == ref.Particles && rel < 1e-5 {
			fmt.Printf("verified against sequential reference (KE rel. diff %.2e)\n", rel)
		} else {
			fmt.Printf("VERIFICATION FAILED: particles %d vs %d, KE %.6f vs %.6f\n",
				res.Summary.Particles, ref.Particles, res.Summary.KE, ref.KE)
			os.Exit(1)
		}
	}
}
