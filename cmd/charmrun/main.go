// Charmrun launches a charmgo program across multiple OS processes on this
// host, the way the paper's applications are launched by charmrun/mpirun
// (section IV-A). The target program must start its runtime with
// charmgo.RunFromEnv; charmrun assigns each process a node id, a TCP
// address, and a PE count through the environment.
//
//	go build -o /tmp/quickstart ./examples/quickstart
//	go run ./cmd/charmrun -np 2 -pes 2 /tmp/quickstart
//
// (The bundled examples use charmgo.Run; see examples/disthello for one
// that is charmrun-ready.)
//
// For fault-tolerant programs (charmgo.RunFT, see examples/faulttolerant),
// charmrun doubles as a chaos harness:
//
//	charmrun -np 3 -kill-node 1@2s /tmp/ftapp   # SIGKILL node 1 after 2s
//	charmrun -np 3 -drop-rate 0.2 /tmp/ftapp    # drop 20% of heartbeats
//
// A node killed by -kill-node is expected to die and does not count as a
// job failure; the survivors must recover and finish on their own.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// parseKillSpec parses -kill-node's N@DUR form (e.g. "1@2s").
func parseKillSpec(s string) (node int, after time.Duration, err error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("want N@DURATION, e.g. 1@2s")
	}
	node, err = strconv.Atoi(s[:at])
	if err != nil || node < 0 {
		return 0, 0, fmt.Errorf("bad node id %q", s[:at])
	}
	after, err = time.ParseDuration(s[at+1:])
	if err != nil || after <= 0 {
		return 0, 0, fmt.Errorf("bad duration %q", s[at+1:])
	}
	return node, after, nil
}

func main() {
	np := flag.Int("np", 2, "number of processes (nodes)")
	pes := flag.Int("pes", 1, "PEs per process")
	basePort := flag.Int("baseport", 42100, "first TCP port")
	traceOut := flag.String("trace", "", "enable tracing; node 0 writes a Chrome trace-event timeline to this file at exit")
	traceCap := flag.Int("trace-cap", 0, "per-PE trace ring-buffer capacity in events (0 = default)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /trace and /debug/pprof per node at host:(port+node), e.g. 127.0.0.1:9100")
	ccsAddr := flag.String("ccs-addr", "", "enable live introspection sampling and serve /introspect per node at host:(port+node); `charmgo top` reads node 0's endpoint")
	sampleInterval := flag.Duration("sample-interval", 0, "introspection sample period (0 = default 250ms; needs -ccs-addr)")
	treeArity := flag.Int("tree-arity", 0, "fan-out k of the spanning tree used for inter-node collectives (0 = default 4, negative = flat collectives)")
	killNode := flag.String("kill-node", "", "SIGKILL node N after a duration, as N@DUR (e.g. 1@2s); requires a charmgo.RunFT program to survive")
	dropRate := flag.Float64("drop-rate", 0, "fraction [0,1) of failure-detector frames dropped by the chaos layer (RunFT programs)")
	ftSeed := flag.Int64("ft-seed", 1, "chaos RNG seed (RunFT programs)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: charmrun [-np N] [-pes K] [-kill-node N@DUR] [-drop-rate P] <binary> [args...]")
		os.Exit(2)
	}
	bin := flag.Arg(0)
	args := flag.Args()[1:]

	victim, killAfter := -1, time.Duration(0)
	if *killNode != "" {
		var err error
		victim, killAfter, err = parseKillSpec(*killNode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charmrun: -kill-node %q: %v\n", *killNode, err)
			os.Exit(2)
		}
		if victim >= *np {
			fmt.Fprintf(os.Stderr, "charmrun: -kill-node %d but only %d nodes\n", victim, *np)
			os.Exit(2)
		}
	}
	if *dropRate < 0 || *dropRate >= 1 {
		fmt.Fprintf(os.Stderr, "charmrun: -drop-rate %v out of range [0,1)\n", *dropRate)
		os.Exit(2)
	}

	addrs := make([]string, *np)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", *basePort+i)
	}
	addrList := strings.Join(addrs, ",")

	var wg sync.WaitGroup
	fail := make(chan error, *np)
	for node := 0; node < *np; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			cmd := exec.Command(bin, args...)
			cmd.Env = append(os.Environ(),
				fmt.Sprintf("CHARMGO_ADDRS=%s", addrList),
				fmt.Sprintf("CHARMGO_NODE=%d", node),
				fmt.Sprintf("CHARMGO_PES=%d", *pes),
			)
			if *traceOut != "" {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_TRACE=%s", *traceOut))
			}
			if *traceCap > 0 {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_TRACE_CAP=%d", *traceCap))
			}
			if *metricsAddr != "" {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_METRICS_ADDR=%s", *metricsAddr))
			}
			if *ccsAddr != "" {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_CCS_ADDR=%s", *ccsAddr))
			}
			if *sampleInterval > 0 {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_SAMPLE_INTERVAL=%s", *sampleInterval))
			}
			if *treeArity != 0 {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_TREE_ARITY=%d", *treeArity))
			}
			if *dropRate > 0 {
				cmd.Env = append(cmd.Env,
					fmt.Sprintf("CHARMGO_FT_DROP=%v", *dropRate),
					fmt.Sprintf("CHARMGO_FT_SEED=%d", *ftSeed))
			}
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if node == victim {
				if err := cmd.Start(); err != nil {
					fail <- fmt.Errorf("node %d: %w", node, err)
					return
				}
				var killed atomic.Bool
				go func() {
					time.Sleep(killAfter)
					killed.Store(true) // before Kill: Wait may return first
					fmt.Fprintf(os.Stderr, "charmrun: killing node %d after %v\n", node, killAfter)
					_ = cmd.Process.Kill()
				}()
				err := cmd.Wait()
				if killed.Load() {
					return // died by our hand: expected, not a job failure
				}
				if err != nil {
					// Died early on its own — that IS a failure.
					fail <- fmt.Errorf("node %d (kill target) exited before the kill: %w", node, err)
				}
				return
			}
			if err := cmd.Run(); err != nil {
				fail <- fmt.Errorf("node %d: %w", node, err)
			}
		}(node)
	}
	wg.Wait()
	close(fail)
	if err := <-fail; err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
