// Charmrun launches a charmgo program across multiple OS processes on this
// host, the way the paper's applications are launched by charmrun/mpirun
// (section IV-A). The target program must start its runtime with
// charmgo.RunFromEnv; charmrun assigns each process a node id, a TCP
// address, and a PE count through the environment.
//
//	go build -o /tmp/quickstart ./examples/quickstart
//	go run ./cmd/charmrun -np 2 -pes 2 /tmp/quickstart
//
// (The bundled examples use charmgo.Run; see examples/disthello for one
// that is charmrun-ready.)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
)

func main() {
	np := flag.Int("np", 2, "number of processes (nodes)")
	pes := flag.Int("pes", 1, "PEs per process")
	basePort := flag.Int("baseport", 42100, "first TCP port")
	traceOut := flag.String("trace", "", "enable tracing; node 0 writes a Chrome trace-event timeline to this file at exit")
	traceCap := flag.Int("trace-cap", 0, "per-PE trace ring-buffer capacity in events (0 = default)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /trace and /debug/pprof per node at host:(port+node), e.g. 127.0.0.1:9100")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: charmrun [-np N] [-pes K] <binary> [args...]")
		os.Exit(2)
	}
	bin := flag.Arg(0)
	args := flag.Args()[1:]

	addrs := make([]string, *np)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", *basePort+i)
	}
	addrList := strings.Join(addrs, ",")

	var wg sync.WaitGroup
	fail := make(chan error, *np)
	for node := 0; node < *np; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			cmd := exec.Command(bin, args...)
			cmd.Env = append(os.Environ(),
				fmt.Sprintf("CHARMGO_ADDRS=%s", addrList),
				fmt.Sprintf("CHARMGO_NODE=%d", node),
				fmt.Sprintf("CHARMGO_PES=%d", *pes),
			)
			if *traceOut != "" {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_TRACE=%s", *traceOut))
			}
			if *traceCap > 0 {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_TRACE_CAP=%d", *traceCap))
			}
			if *metricsAddr != "" {
				cmd.Env = append(cmd.Env, fmt.Sprintf("CHARMGO_METRICS_ADDR=%s", *metricsAddr))
			}
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				fail <- fmt.Errorf("node %d: %w", node, err)
			}
		}(node)
	}
	wg.Wait()
	close(fail)
	if err := <-fail; err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
