// Collectivebench measures the spanning-tree collectives against the flat
// O(N) scheme (DESIGN.md §reductions, EXPERIMENTS.md §collectives): one
// broadcast+reduction roundtrip across np in-memory nodes, at small, medium
// and large (fragmented) payload sizes, in both tree and flat mode. It
// writes the machine-readable results to BENCH_collectives.json so the
// committed numbers can be regenerated with `make bench`.
//
//	go run ./cmd/collectivebench                 # table + BENCH_collectives.json
//	go run ./cmd/collectivebench -np 8 -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"charmgo"
	"charmgo/internal/core"
	"charmgo/internal/transport"
)

// collWorker receives the job-wide broadcast and contributes the payload
// length back up the reduction tree. It implements FastDispatcher
// (alphabetical method ids: Bcast=0) so dispatch cost stays out of the
// measurement.
type collWorker struct {
	charmgo.Chare
}

func (w *collWorker) Bcast(payload []byte, done charmgo.Future) {
	w.Contribute(len(payload), charmgo.SumReducer, done)
}

func (w *collWorker) DispatchEM(id int, args []any) {
	switch id {
	case 0:
		w.Bcast(args[0].([]byte), args[1].(charmgo.Future))
	default:
		panic(fmt.Sprintf("collWorker: unknown method id %d", id))
	}
}

// result is one (size, mode) measurement.
type result struct {
	SizeBytes     int     `json:"size_bytes"`
	Mode          string  `json:"mode"` // "tree" or "flat"
	Nodes         int     `json:"nodes"`
	TreeArity     int     `json:"tree_arity"` // 0 for flat mode
	Iters         int     `json:"iters"`
	UsPerOp       float64 `json:"us_per_op"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
	RootSendsPerB float64 `json:"root_sends_per_bcast"`
}

// report is the BENCH_collectives.json document.
type report struct {
	Benchmark string   `json:"benchmark"`
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Results   []result `json:"results"`
}

// runOne measures iters broadcast+reduce roundtrips across np in-memory
// nodes (1 PE each) with the given tree arity (negative = flat collectives)
// and payload size.
func runOne(np, size, arity, iters int) result {
	nw := transport.NewMemNetwork(np)
	rts := make([]*core.Runtime, np)
	for i := range rts {
		rts[i] = core.NewRuntime(core.Config{PEs: 1, Transport: nw.Endpoint(i), TreeArity: arity})
		rts[i].Register(&collWorker{})
	}
	var wg sync.WaitGroup
	for i := 1; i < np; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rts[i].Start(nil)
		}(i)
	}
	payload := make([]byte, size)
	res := result{SizeBytes: size, Nodes: np, Iters: iters}
	if arity >= 0 {
		res.Mode = "tree"
		res.TreeArity = arity
		if arity == 0 {
			res.TreeArity = 4 // Config.TreeArity 0 selects the default
		}
	} else {
		res.Mode = "flat"
	}
	rts[0].Start(func(self *charmgo.Chare) {
		defer self.Exit()
		g := self.NewGroup(&collWorker{})
		w := self.CreateFuture()
		g.Call("Bcast", payload, w) // warm up (collection create, pools)
		w.Get()
		before := rts[0].BcastSends()
		start := time.Now()
		for i := 0; i < iters; i++ {
			f := self.CreateFuture()
			g.Call("Bcast", payload, f)
			if got := f.Get(); got != size*np {
				panic(fmt.Sprintf("broadcast+reduce = %v, want %d", got, size*np))
			}
		}
		elapsed := time.Since(start)
		res.UsPerOp = float64(elapsed.Microseconds()) / float64(iters)
		res.OpsPerSec = float64(iters) / elapsed.Seconds()
		res.MBPerSec = float64(size) * float64(iters) / elapsed.Seconds() / (1 << 20)
		res.RootSendsPerB = float64(rts[0].BcastSends()-before) / float64(iters)
	})
	wg.Wait()
	for i := 0; i < np; i++ {
		nw.Endpoint(i).Close()
	}
	return res
}

func main() {
	np := flag.Int("np", 8, "number of in-memory nodes")
	out := flag.String("o", "BENCH_collectives.json", "output file ('' = stdout table only)")
	iters := flag.Int("iters", 0, "iterations per configuration (0 = size-dependent default)")
	flag.Parse()

	rep := report{
		Benchmark: "broadcast+reduce roundtrip, in-memory transport",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	fmt.Printf("%-10s %-5s %8s %12s %12s %10s %14s\n",
		"size", "mode", "iters", "us/op", "ops/s", "MB/s", "rootsends/op")
	for _, size := range []int{64, 64 << 10, 4 << 20} {
		n := *iters
		if n == 0 {
			n = 200
			if size >= 1<<20 {
				n = 30
			}
		}
		for _, arity := range []int{0, -1} {
			r := runOne(*np, size, arity, n)
			rep.Results = append(rep.Results, r)
			fmt.Printf("%-10d %-5s %8d %12.1f %12.1f %10.2f %14.2f\n",
				r.SizeBytes, r.Mode, r.Iters, r.UsPerOp, r.OpsPerSec, r.MBPerSec, r.RootSendsPerB)
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "collectivebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "collectivebench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
