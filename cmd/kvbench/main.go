// Kvbench drives the kvservice serving stack (internal/elastic) with an
// OPEN-loop load generator — requests are issued on a fixed arrival schedule
// regardless of completions, so queueing shows up as latency instead of
// being absorbed by a closed loop's self-throttling — and writes the
// machine-readable results to BENCH_serving.json (EXPERIMENTS.md §serving).
//
// Cells:
//   - steady: fixed arrival rate against a stable membership.
//   - join:   same load; a provisioned idle node is admitted mid-run and
//     shards rebalance onto it. Zero request loss required.
//   - leave:  same load; an active node drains and departs mid-run without
//     tripping the failure detectors. Zero request loss required.
//   - saturation: arrival-rate sweep on stable membership; the saturation
//     throughput is the highest completed-requests/sec the stack sustains.
//
// Every cell reports p50/p99 latency over the completed requests. Shed
// requests (admission control above the high watermark) are counted
// separately — they are an explicit reply, not a loss; lost = sent - ok -
// shed must be zero in the membership cells.
//
//	go run ./cmd/kvbench                       # table + BENCH_serving.json
//	go run ./cmd/kvbench -rate 3000 -duration 3s -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"charmgo/internal/elastic"
	"charmgo/internal/metrics"
)

// cellResult is one cell's measurement in BENCH_serving.json.
type cellResult struct {
	Cell            string  `json:"cell"`
	MembershipEvent string  `json:"membership_event,omitempty"`
	Nodes           int     `json:"nodes"`
	PEs             int     `json:"pes_per_node"`
	Shards          int     `json:"shards"`
	RateRPS         int     `json:"offered_rate_rps"`
	DurationMS      int64   `json:"duration_ms"`
	Sent            int64   `json:"sent"`
	OK              int64   `json:"ok"`
	Shed            int64   `json:"shed"`
	Lost            int64   `json:"lost"`
	P50us           float64 `json:"p50_us"`
	P99us           float64 `json:"p99_us"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	FalsePositives  int64   `json:"detector_false_positives"`
}

// satPoint is one rate step of the saturation sweep.
type satPoint struct {
	RateRPS       int     `json:"offered_rate_rps"`
	ThroughputRPS float64 `json:"achieved_rps"`
	Shed          int64   `json:"shed"`
	P50us         float64 `json:"p50_us"`
	P99us         float64 `json:"p99_us"`
}

// report is the BENCH_serving.json document.
type report struct {
	Benchmark     string       `json:"benchmark"`
	GoVersion     string       `json:"go_version"`
	NumCPU        int          `json:"num_cpu"`
	Cells         []cellResult `json:"cells"`
	Saturation    []satPoint   `json:"saturation_sweep"`
	SaturationRPS float64      `json:"saturation_rps"`
}

// recorder accumulates per-request latencies and outcomes.
type recorder struct {
	mu   sync.Mutex
	lats []time.Duration
	sent atomic.Int64
	ok   atomic.Int64
	shed atomic.Int64
}

func (r *recorder) done(start time.Time, err error) {
	switch err {
	case nil:
		r.ok.Add(1)
		d := time.Since(start)
		r.mu.Lock()
		r.lats = append(r.lats, d)
		r.mu.Unlock()
	case elastic.ErrOverloaded:
		r.shed.Add(1)
	}
}

// pcts returns the p50 and p99 of the recorded latencies, in microseconds.
func (r *recorder) pcts() (p50, p99 float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.lats) == 0 {
		return 0, 0
	}
	sort.Slice(r.lats, func(i, j int) bool { return r.lats[i] < r.lats[j] })
	at := func(p float64) float64 {
		i := int(p * float64(len(r.lats)))
		if i >= len(r.lats) {
			i = len(r.lats) - 1
		}
		return float64(r.lats[i].Nanoseconds()) / 1e3
	}
	return at(0.50), at(0.99)
}

// openLoop fires requests at the fixed arrival rate for the given duration
// (each request on its own goroutine — completions never throttle arrivals)
// and waits for the stragglers. mid, when non-nil, runs at duration/2 on its
// own goroutine (the membership event under load).
func openLoop(svc *elastic.Service, rate int, duration time.Duration, keys int, mid func()) *recorder {
	rec := &recorder{}
	interval := time.Second / time.Duration(rate)
	var wg sync.WaitGroup
	var midWG sync.WaitGroup
	deadline := time.Now().Add(duration)
	fired := false
	for i := 0; time.Now().Before(deadline); i++ {
		if mid != nil && !fired && time.Now().After(deadline.Add(-duration/2)) {
			fired = true
			midWG.Add(1)
			go func() { defer midWG.Done(); mid() }()
		}
		rec.sent.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("key-%03d", i%keys)
			t0 := time.Now()
			var err error
			if i%2 == 0 {
				err = svc.Put(k, "v")
			} else {
				_, err = svc.Get(k)
			}
			rec.done(t0, err)
		}(i)
		time.Sleep(interval)
	}
	wg.Wait()
	midWG.Wait()
	return rec
}

// newCluster boots a fresh kvservice cluster and warms the keyspace.
func newCluster(nodes, pes, shards, keys int, initial []int) (*elastic.Service, error) {
	svc, err := elastic.NewService(elastic.ServiceConfig{
		Nodes:             nodes,
		PEs:               pes,
		Shards:            shards,
		InitialActive:     initial,
		Metrics:           metrics.NewRegistry(),
		Detectors:         true,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspicionTimeout:  10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < keys; i++ {
		if err := svc.Put(fmt.Sprintf("key-%03d", i), "v"); err != nil {
			svc.Close()
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	return svc, nil
}

func main() {
	nodes := flag.Int("nodes", 3, "provisioned node slots")
	pes := flag.Int("pes", 2, "PEs per node")
	shards := flag.Int("shards", 24, "shard count")
	keys := flag.Int("keys", 64, "distinct keys")
	rate := flag.Int("rate", 2000, "offered arrival rate (req/s) for the membership cells")
	duration := flag.Duration("duration", 3*time.Second, "duration of each membership cell")
	satDur := flag.Duration("sat-duration", time.Second, "duration of each saturation step")
	out := flag.String("o", "BENCH_serving.json", "output JSON path")
	flag.Parse()

	rep := &report{
		Benchmark: "kvservice open-loop serving: steady state, node join, node leave, saturation sweep",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	all := make([]int, *nodes)
	for i := range all {
		all[i] = i
	}

	cell := func(name, event string, initial []int, mid func(svc *elastic.Service) error) {
		svc, err := newCluster(*nodes, *pes, *shards, *keys, initial)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		defer svc.Close()
		var midErr error
		var hook func()
		if mid != nil {
			hook = func() { midErr = mid(svc) }
		}
		t0 := time.Now()
		rec := openLoop(svc, *rate, *duration, *keys, hook)
		elapsed := time.Since(t0)
		if midErr != nil {
			fmt.Fprintf(os.Stderr, "kvbench: %s: membership event: %v\n", name, midErr)
			os.Exit(1)
		}
		p50, p99 := rec.pcts()
		sent, ok, shed := rec.sent.Load(), rec.ok.Load(), rec.shed.Load()
		r := cellResult{
			Cell: name, MembershipEvent: event,
			Nodes: *nodes, PEs: *pes, Shards: *shards,
			RateRPS: *rate, DurationMS: elapsed.Milliseconds(),
			Sent: sent, OK: ok, Shed: shed, Lost: sent - ok - shed,
			P50us: p50, P99us: p99,
			ThroughputRPS:  float64(ok) / elapsed.Seconds(),
			FalsePositives: svc.FalsePositives(),
		}
		rep.Cells = append(rep.Cells, r)
		fmt.Printf("%-8s %6d req/s offered  %8.0f req/s done  p50 %7.0fus  p99 %7.0fus  shed %5d  lost %d  falsepos %d\n",
			name, *rate, r.ThroughputRPS, p50, p99, shed, r.Lost, r.FalsePositives)
		if r.Lost != 0 {
			fmt.Fprintf(os.Stderr, "kvbench: %s: %d requests lost\n", name, r.Lost)
			os.Exit(1)
		}
	}

	cell("steady", "", all, nil)
	joiner := *nodes - 1
	cell("join", fmt.Sprintf("node %d admitted mid-run", joiner), all[:*nodes-1],
		func(svc *elastic.Service) error { return svc.Join(joiner) })
	cell("leave", "node 1 drained and departed mid-run", all,
		func(svc *elastic.Service) error { return svc.Leave(1) })

	// Saturation sweep: fresh cluster, rising offered rate; saturation is the
	// best achieved completion rate across the sweep.
	svc, err := newCluster(*nodes, *pes, *shards, *keys, all)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench: saturation:", err)
		os.Exit(1)
	}
	defer svc.Close()
	best := 0.0
	for _, r := range []int{1000, 2000, 4000, 8000, 16000, 32000} {
		t0 := time.Now()
		rec := openLoop(svc, r, *satDur, *keys, nil)
		elapsed := time.Since(t0)
		p50, p99 := rec.pcts()
		ach := float64(rec.ok.Load()) / elapsed.Seconds()
		rep.Saturation = append(rep.Saturation, satPoint{
			RateRPS: r, ThroughputRPS: ach, Shed: rec.shed.Load(), P50us: p50, P99us: p99,
		})
		fmt.Printf("sat      %6d req/s offered  %8.0f req/s done  p50 %7.0fus  p99 %7.0fus  shed %5d\n",
			r, ach, p50, p99, rec.shed.Load())
		if ach > best {
			best = ach
		}
		// Past saturation the achieved rate flattens; two more steps of
		// headroom are enough to show the knee.
		if ach < float64(r)/2 {
			break
		}
	}
	rep.SaturationRPS = best
	fmt.Printf("saturation throughput: %.0f req/s\n", best)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
