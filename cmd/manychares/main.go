// Manychares sweeps the per-PE scheduler across overdecomposition levels
// (DESIGN.md §3.9, EXPERIMENTS.md §manychares): one in-process node with
// several PEs hosts up to a million array elements, and every cell measures a
// broadcast+reduce round under one of three scheduler modes —
//
//	mutex     legacy mutex+condvar ring mailbox (Config.MutexMailbox)
//	lockfree  lock-free MPSC mailbox, no stealing (the default)
//	steal     lock-free mailbox + within-node work stealing (Config.StealEnabled)
//
// crossed with placement (balanced block map vs. every element pinned to
// PE 0) and message grain (empty EMs, a short CPU spin, or a sleep that
// models blocking I/O). Skewed+sleep cells are where stealing pays: idle PEs
// steal whole-chare run grants from PE 0's deque and the sleeps overlap.
// Balanced cells guard the other direction — stealing must not tax the happy
// path. Results land in BENCH_manychares.json via `make bench/manychares`.
//
//	go run ./cmd/manychares                # full sweep + BENCH_manychares.json
//	go run ./cmd/manychares -quick         # CI-sized sweep, no 1M-chare cell
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"charmgo"
	"charmgo/internal/core"
)

// manyWorker is a stealable chare (no threaded or when-gated methods). It
// implements FastDispatcher (alphabetical ids: Bump=0, Nap=1) so reflective
// dispatch stays out of the measurement.
type manyWorker struct {
	charmgo.Chare
	N int
}

// Bump spins for ~spinIters arithmetic steps (0 = empty EM) and contributes.
func (w *manyWorker) Bump(spinIters int, done charmgo.Future) {
	w.N += spin(spinIters)
	w.Contribute(1, charmgo.SumReducer, done)
}

// Nap sleeps for napUS microseconds — a stand-in for blocking I/O. The sleep
// blocks only this PE's goroutine, so sibling PEs (and thieves holding stolen
// run grants) keep executing concurrently even at GOMAXPROCS=1.
func (w *manyWorker) Nap(napUS int, done charmgo.Future) {
	// Stalling the PE is the point: the skewed cells measure whether the
	// work-stealing scheduler can overlap these stalls across sibling PEs.
	time.Sleep(time.Duration(napUS) * time.Microsecond) //charmvet:ignore noblock
	w.Contribute(1, charmgo.SumReducer, done)
}

func (w *manyWorker) DispatchEM(id int, args []any) {
	switch id {
	case 0:
		w.Bump(args[0].(int), args[1].(charmgo.Future))
	case 1:
		w.Nap(args[0].(int), args[1].(charmgo.Future))
	default:
		panic(fmt.Sprintf("manyWorker: unknown method id %d", id))
	}
}

// spin burns roughly n xorshift steps of CPU; the data dependency keeps the
// compiler from deleting the loop.
func spin(n int) int {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return int(x & 1)
}

// pinMap places every element on PE 0 — the worst-case skew the stealer is
// built to repair.
type pinMap struct{}

func (pinMap) ProcNum(index []int, numPEs int) int { return 0 }

// result is one sweep cell.
type result struct {
	Scheduler  string  `json:"scheduler"` // mutex | lockfree | steal
	Placement  string  `json:"placement"` // balanced | skewed_pe0
	Grain      string  `json:"grain"`     // none | spin | sleep200us
	Chares     int     `json:"chares"`
	PEs        int     `json:"pes"`
	CharesPE   int     `json:"chares_per_pe"`
	Gomaxprocs int     `json:"gomaxprocs"`
	Rounds     int     `json:"rounds"`
	CreateMs   float64 `json:"create_ms"`
	ElapsedMs  float64 `json:"elapsed_ms"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	Steals     int64   `json:"steals"`
}

// report is the BENCH_manychares.json document.
type report struct {
	Benchmark string   `json:"benchmark"`
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Results   []result `json:"results"`
}

type cell struct {
	sched, placement, grain string
	chares, pes, gmp        int
	rounds                  int
}

// grain parameters: the spin cell burns ~2µs of CPU per message so the EM
// body, not the dispatch, dominates; the sleep cell parks for 200µs so the
// only way to finish fast is to overlap elements across PEs.
const (
	spinIters = 2000
	napUS     = 200
)

// runCell runs the cell reps times and keeps the median-elapsed rep: the
// short cells finish in tens of milliseconds, where scheduler-vs-scheduler
// deltas are smaller than run-to-run noise on a shared box.
func runCell(c cell, reps int) result {
	rs := make([]result, reps)
	for i := range rs {
		rs[i] = runOne(c)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ElapsedMs < rs[j].ElapsedMs })
	return rs[len(rs)/2]
}

// spec round-trips a cell through the -cell flag for subprocess isolation.
func (c cell) spec() string {
	return fmt.Sprintf("%s,%s,%s,%d,%d,%d,%d",
		c.sched, c.placement, c.grain, c.chares, c.pes, c.gmp, c.rounds)
}

func parseCell(s string) (cell, error) {
	f := strings.Split(s, ",")
	if len(f) != 7 {
		return cell{}, fmt.Errorf("cell spec %q: want 7 fields", s)
	}
	var c cell
	c.sched, c.placement, c.grain = f[0], f[1], f[2]
	for i, dst := range []*int{&c.chares, &c.pes, &c.gmp, &c.rounds} {
		n, err := strconv.Atoi(f[3+i])
		if err != nil {
			return cell{}, fmt.Errorf("cell spec %q: %v", s, err)
		}
		*dst = n
	}
	return c, nil
}

// runCellIsolated re-execs this binary to run one cell in a fresh process.
// Without isolation the 1M-chare cells inherit a multi-hundred-MB heap from
// earlier cells in the sweep, and GC pacing during the timed rounds then
// depends on sweep order — enough to flip scheduler-vs-scheduler verdicts
// between runs. A pristine heap per cell makes the big cells reproducible.
func runCellIsolated(c cell, reps int) result {
	exe, err := os.Executable()
	if err != nil {
		return runCell(c, reps)
	}
	cmd := exec.Command(exe, "-cell", c.spec(), "-reps", strconv.Itoa(reps))
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "manychares: cell %s subprocess: %v (falling back in-process)\n", c.spec(), err)
		return runCell(c, reps)
	}
	var r result
	if err := json.Unmarshal(out, &r); err != nil {
		fmt.Fprintf(os.Stderr, "manychares: cell %s subprocess output: %v (falling back in-process)\n", c.spec(), err)
		return runCell(c, reps)
	}
	return r
}

func runOne(c cell) result {
	prev := runtime.GOMAXPROCS(c.gmp)
	defer runtime.GOMAXPROCS(prev)

	cfg := core.Config{PEs: c.pes}
	switch c.sched {
	case "mutex":
		cfg.MutexMailbox = true
	case "steal":
		cfg.StealEnabled = true
		cfg.StealSeed = 12345
	}
	rt := core.NewRuntime(cfg)
	rt.Register(&manyWorker{})
	rt.RegisterMap("pe0", pinMap{})

	res := result{
		Scheduler: c.sched, Placement: c.placement, Grain: c.grain,
		Chares: c.chares, PEs: c.pes, CharesPE: c.chares / c.pes,
		Gomaxprocs: c.gmp, Rounds: c.rounds,
	}
	method, arg := "Bump", 0
	switch c.grain {
	case "spin":
		arg = spinIters
	case "sleep200us":
		method, arg = "Nap", napUS
	}
	rt.Start(func(self *charmgo.Chare) {
		defer self.Exit()
		t0 := time.Now()
		var arr charmgo.Proxy
		if c.placement == "balanced" {
			arr = self.NewArray(&manyWorker{}, []int{c.chares})
		} else {
			arr = self.NewArrayMapped(&manyWorker{}, []int{c.chares}, "pe0")
		}
		w := self.CreateFuture()
		arr.Call(method, arg, w) // warm up: element creation, pools
		if got := w.Get(); got != c.chares {
			panic(fmt.Sprintf("warmup reduce = %v, want %d", got, c.chares))
		}
		res.CreateMs = float64(time.Since(t0).Microseconds()) / 1e3

		start := time.Now()
		for i := 0; i < c.rounds; i++ {
			f := self.CreateFuture()
			arr.Call(method, arg, f)
			if got := f.Get(); got != c.chares {
				panic(fmt.Sprintf("round reduce = %v, want %d", got, c.chares))
			}
		}
		elapsed := time.Since(start)
		res.ElapsedMs = float64(elapsed.Microseconds()) / 1e3
		res.MsgsPerSec = float64(c.chares*c.rounds) / elapsed.Seconds()
		res.Steals = rt.StealsTotal()
	})
	return res
}

func main() {
	quick := flag.Bool("quick", false, "CI-sized sweep (skip the 1M-chare cell)")
	out := flag.String("o", "BENCH_manychares.json", "output file ('' = stdout table only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole sweep")
	filter := flag.String("filter", "", "only run cells whose sched/placement/grain/chares/gmpN id contains this substring")
	merge := flag.String("merge", "", "existing report to merge into: cells measured this run replace their counterparts, everything else is kept")
	reps := flag.Int("reps", 5, "repetitions per cell; the median-elapsed rep is reported")
	cellSpec := flag.String("cell", "", "internal: run one sched,placement,grain,chares,pes,gmp,rounds cell and print its result as JSON")
	flag.Parse()
	if *cellSpec != "" {
		c, err := parseCell(*cellSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manychares:", err)
			os.Exit(1)
		}
		data, err := json.Marshal(runCell(c, *reps))
		if err != nil {
			fmt.Fprintln(os.Stderr, "manychares:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manychares:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	const pes = 4
	maxProcs := []int{1, 4}
	scheds := []string{"mutex", "lockfree", "steal"}

	// Groups share every axis but the scheduler; sched is filled in per rep
	// below so the three schedulers of a group run back-to-back (paired).
	var groups []cell
	// Balanced throughput ladder: overdecomposition from 1Ki to 256Ki
	// chares/PE (the top rung is the 1M+-chare cell). Empty EMs make this a
	// pure scheduler-overhead measurement.
	ladder := []int{4 << 10, 64 << 10}
	if !*quick {
		ladder = append(ladder, 1<<20)
	}
	for _, n := range ladder {
		// Small cells run many rounds so the timed window is long enough to
		// amortize GC chunkiness (a 20 ms cell is 10-20% one GC pause).
		rounds := 8
		switch {
		case n >= 1<<20:
			rounds = 2
		case n <= 4<<10:
			rounds = 16
		}
		for _, gmp := range maxProcs {
			groups = append(groups, cell{"", "balanced", "none", n, pes, gmp, rounds})
		}
	}
	// Balanced CPU grain: stealing must not regress work-dominated cells.
	for _, gmp := range maxProcs {
		groups = append(groups, cell{"", "balanced", "spin", 4 << 10, pes, gmp, 8})
	}
	// Skewed sleep grain: all elements on PE 0; only run-grant stealing can
	// overlap the sleeps. This is the cell stealing exists for.
	for _, gmp := range maxProcs {
		groups = append(groups, cell{"", "skewed_pe0", "sleep200us", 256, pes, gmp, 2})
	}

	rep := report{
		Benchmark: "overdecomposition sweep: broadcast+reduce round per scheduler mode",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	fmt.Printf("%-9s %-11s %-10s %9s %4s %4s %8s %10s %12s %8s\n",
		"sched", "placement", "grain", "chares", "pes", "gmp", "rounds", "ms/sweep", "msgs/s", "steals")
	// Paired interleaving: within each group the schedulers alternate
	// mutex/lockfree/steal every rep, so slow load drift on a shared box hits
	// all three alike, and the per-scheduler medians compare like with like.
	for _, g := range groups {
		n := *reps
		acc := make(map[string][]result, len(scheds))
		for i := 0; i < n; i++ {
			for _, s := range scheds {
				c := g
				c.sched = s
				id := fmt.Sprintf("%s/%s/%s/%d/gmp%d", c.sched, c.placement, c.grain, c.chares, c.gmp)
				if *filter != "" && !strings.Contains(id, *filter) {
					continue
				}
				if *cpuprofile != "" {
					acc[s] = append(acc[s], runOne(c)) // profiling needs the cells in-process
				} else {
					acc[s] = append(acc[s], runCellIsolated(c, 1))
				}
			}
		}
		for _, s := range scheds {
			rs := acc[s]
			if len(rs) == 0 {
				continue
			}
			sort.Slice(rs, func(i, j int) bool { return rs[i].ElapsedMs < rs[j].ElapsedMs })
			r := rs[len(rs)/2]
			rep.Results = append(rep.Results, r)
			fmt.Printf("%-9s %-11s %-10s %9d %4d %4d %8d %10.1f %12.0f %8d\n",
				r.Scheduler, r.Placement, r.Grain, r.Chares, r.PEs, r.Gomaxprocs, r.Rounds,
				r.ElapsedMs, r.MsgsPerSec, r.Steals)
		}
	}
	if *merge != "" {
		// Replace matching cells of the existing report: groups are measured
		// independently (pairing is within-group), so a per-group rerun on a
		// noisy box composes with the untouched remainder.
		prev, err := os.ReadFile(*merge)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manychares:", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(prev, &base); err != nil {
			fmt.Fprintln(os.Stderr, "manychares:", err)
			os.Exit(1)
		}
		key := func(r result) string {
			return fmt.Sprintf("%s/%s/%s/%d/gmp%d", r.Scheduler, r.Placement, r.Grain, r.Chares, r.Gomaxprocs)
		}
		fresh := make(map[string]result, len(rep.Results))
		for _, r := range rep.Results {
			fresh[key(r)] = r
		}
		for i, r := range base.Results {
			if nr, ok := fresh[key(r)]; ok {
				base.Results[i] = nr
				delete(fresh, key(r))
			}
		}
		for _, r := range rep.Results {
			if _, ok := fresh[key(r)]; ok {
				base.Results = append(base.Results, r)
			}
		}
		rep = base
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "manychares:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "manychares:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
