// Stencil3d is the command-line driver for the stencil3d mini-app (paper
// section V-A/V-B), mirroring the benchmark binary of the paper's
// repository.
//
//	go run ./cmd/stencil3d -grid 64 -blocks 2,2,2 -iters 100 -pes 4
//	go run ./cmd/stencil3d -impl mpi
//	go run ./cmd/stencil3d -imbalance -lb greedy -lbperiod 30 -blocks 2,4,2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"charmgo/internal/core"
	"charmgo/internal/lb"
	"charmgo/internal/stencil"
	"charmgo/internal/trace"
)

func main() {
	grid := flag.Int("grid", 48, "global grid edge (grid^3 cells)")
	blocks := flag.String("blocks", "2,2,2", "block counts per dimension bx,by,bz")
	iters := flag.Int("iters", 100, "Jacobi iterations")
	pes := flag.Int("pes", 4, "PEs (charm implementations)")
	impl := flag.String("impl", "charm", "implementation: charm, charm-dynamic, mpi")
	imbalance := flag.Bool("imbalance", false, "enable the paper's synthetic load imbalance")
	lbName := flag.String("lb", "", "load balancer: greedy, refine, rotate, rand (charm only)")
	lbPeriod := flag.Int("lbperiod", 30, "AtSync period in iterations")
	serialize := flag.Bool("serialize", false, "serialize all cross-PE messages (process model)")
	verify := flag.Bool("verify", true, "check the checksum against the sequential reference")
	traceRun := flag.Bool("trace", false, "print a Projections-style trace summary (charm only)")
	traceOut := flag.String("traceout", "", "write a Chrome trace-event timeline to this file (implies -trace)")
	flag.Parse()

	bx, by, bz, err := parseTriple(*blocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := stencil.Params{
		GridX: *grid, GridY: *grid, GridZ: *grid,
		BX: bx, BY: by, BZ: bz,
		Iters:     *iters,
		Imbalance: *imbalance,
	}
	var strategy core.LBStrategy
	switch *lbName {
	case "":
	case "greedy":
		strategy = lb.Greedy{}
	case "refine":
		strategy = lb.Refine{}
	case "rotate":
		strategy = lb.Rotate{}
	case "rand":
		strategy = lb.Random{Seed: 1}
	default:
		fmt.Fprintf(os.Stderr, "unknown load balancer %q\n", *lbName)
		os.Exit(2)
	}
	if strategy != nil {
		p.LBPeriod = *lbPeriod
	}

	var tracer *trace.Tracer
	if *traceRun || *traceOut != "" {
		tracer = trace.New(*pes)
	}
	var res stencil.Result
	switch *impl {
	case "charm":
		res, err = stencil.RunCharm(p, core.Config{PEs: *pes, LB: strategy,
			ForceSerialize: *serialize, Trace: tracer})
	case "charm-dynamic":
		res, err = stencil.RunCharm(p, core.Config{PEs: *pes, LB: strategy,
			Dispatch: core.DynamicDispatch, ForceSerialize: *serialize, Trace: tracer})
	case "mpi":
		res, err = stencil.RunMPI(p)
	default:
		fmt.Fprintf(os.Stderr, "unknown implementation %q\n", *impl)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d blocks on %d PEs, %d iterations\n", res.Impl, res.Blocks, res.PEs, p.Iters)
	fmt.Printf("time per step: %.3f ms  (wall %.3f s)\n", res.TimePerStepMS, res.WallSeconds)
	if *imbalance {
		fmt.Printf("PE balance (max/avg work, final window): %.2f\n", res.MaxOverAvg)
	}
	if tracer != nil {
		fmt.Println("\ntrace summary:")
		tracer.Summarize().Fprint(os.Stdout)
	}
	if *traceOut != "" && tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := trace.WriteChrome(f, tracer.Report(0))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("timeline written to %s (open in Perfetto or chrome://tracing)\n", *traceOut)
	}
	if *verify {
		want, err := stencil.RunSequential(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		diff := res.Checksum - want
		if diff < 1e-6 && diff > -1e-6 {
			fmt.Printf("checksum OK (%.6f)\n", res.Checksum)
		} else {
			fmt.Printf("CHECKSUM MISMATCH: got %.6f want %.6f\n", res.Checksum, want)
			os.Exit(1)
		}
	}
}

func parseTriple(s string) (int, int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("expected bx,by,bz, got %q", s)
	}
	var v [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad block count %q", p)
		}
		v[i] = n
	}
	return v[0], v[1], v[2], nil
}
