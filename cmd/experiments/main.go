// Experiments regenerates the paper's evaluation figures (section V).
//
//	go run ./cmd/experiments              # all four figures, default calibration
//	go run ./cmd/experiments -fig 3       # one figure
//	go run ./cmd/experiments -calibrate   # measure this host's constants first
//	go run ./cmd/experiments -real        # also run the real runtime at host scale
//
// Figures 1-4 are produced by the calibrated cluster simulator
// (internal/simcluster); -real additionally executes the actual runtime on
// this machine's PEs as a small-scale cross-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"charmgo/internal/bench"
	"charmgo/internal/core"
	"charmgo/internal/lb"
	"charmgo/internal/simcluster"
	"charmgo/internal/stencil"

	lmd "charmgo/internal/leanmd"
)

func main() {
	figFlag := flag.String("fig", "all", "figure to regenerate: 1, 2, 3, 4 or all")
	calibrate := flag.Bool("calibrate", false, "measure calibration constants on this host (slower)")
	real := flag.Bool("real", false, "also run real-runtime small-scale versions")
	flag.Parse()

	cal := simcluster.Default()
	if *calibrate {
		fmt.Println("calibrating on this host...")
		cal = simcluster.Measure()
	}
	fmt.Printf("calibration: kernel %.2f ns/cell, msg overhead static %.2f us / dynamic %.2f us / mpi %.2f us\n\n",
		cal.KernelSecPerCell*1e9, cal.StaticMsgSec*1e6, cal.DynamicMsgSec*1e6, cal.MPIMsgSec*1e6)

	var figs []bench.Figure
	switch *figFlag {
	case "all":
		figs = bench.All(cal)
	case "1":
		figs = []bench.Figure{bench.Fig1(cal)}
	case "2":
		figs = []bench.Figure{bench.Fig2(cal)}
	case "3":
		figs = []bench.Figure{bench.Fig3(cal)}
	case "4":
		figs = []bench.Figure{bench.Fig4(cal)}
	case "lb":
		figs = []bench.Figure{bench.AblationLB(cal)}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
	for _, f := range figs {
		bench.Print(os.Stdout, f)
	}

	if *real {
		runReal()
	}
}

// runReal executes the actual runtime on this host as a cross-check. With
// fewer physical cores than PEs the absolute times do not scale, but the
// implementation gaps and LB balance improvements are directly measurable.
func runReal() {
	fmt.Printf("=== real runtime on this host (%d hardware threads) ===\n\n", runtime.NumCPU())

	p := stencil.Params{GridX: 48, GridY: 48, GridZ: 48, BX: 2, BY: 2, BZ: 2, Iters: 40}
	st, err := stencil.RunCharm(p, core.Config{PEs: 4})
	must(err)
	dy, err := stencil.RunCharm(p, core.Config{PEs: 4, Dispatch: core.DynamicDispatch})
	must(err)
	mp, err := stencil.RunMPI(p)
	must(err)
	fmt.Println("stencil3d (48^3, 8 blocks, 4 PEs):")
	for _, r := range []stencil.Result{st, dy, mp} {
		fmt.Printf("  %-14s %7.2f ms/step\n", r.Impl, r.TimePerStepMS)
	}

	pi := stencil.Params{GridX: 32, GridY: 32, GridZ: 32, BX: 2, BY: 4, BZ: 2,
		Iters: 90, Imbalance: true}
	noLB, err := stencil.RunCharm(pi, core.Config{PEs: 4})
	must(err)
	pi.LBPeriod = 30
	withLB, err := stencil.RunCharm(pi, core.Config{PEs: 4, LB: lb.Greedy{}})
	must(err)
	fmt.Printf("\nimbalanced stencil3d, final-window PE balance (max/avg):\n")
	fmt.Printf("  %-14s %.2f\n  %-14s %.2f\n", "no LB", noLB.MaxOverAvg, "GreedyLB", withLB.MaxOverAvg)

	pm := lmd.DefaultParams()
	pm.Steps = 10
	md, err := lmd.RunCharm(pm, core.Config{PEs: 4})
	must(err)
	mdDyn, err := lmd.RunCharm(pm, core.Config{PEs: 4, Dispatch: core.DynamicDispatch})
	must(err)
	fmt.Printf("\nLeanMD (%d cells + %d computes, 4 PEs):\n", md.Cells, md.Computes)
	fmt.Printf("  %-14s %7.2f ms/step\n", "charm-static", md.TimePerStepMS)
	fmt.Printf("  %-14s %7.2f ms/step (%.1f%% overhead)\n", "charm-dynamic",
		mdDyn.TimePerStepMS, (mdDyn.TimePerStepMS/md.TimePerStepMS-1)*100)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
