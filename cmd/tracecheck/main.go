// Tracecheck validates that a file is well-formed Chrome trace-event JSON
// as produced by the charmgo tracer (trace.WriteChrome): the JSON-object
// format with a traceEvents array, microsecond timestamps, and at least one
// complete ("X") entry-method event per processing element track. Used by
// `make profile` to gate the exported timeline, and handy after any traced
// run:
//
//	go run ./cmd/tracecheck /tmp/stencil.json
//
// Exit status is 0 for a valid timeline, 1 otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// event mirrors the Chrome trace-event fields tracecheck cares about.
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Args json.RawMessage `json:"args"`
}

type traceFile struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("%s: not valid JSON: %v", path, err)
	}
	if tf.TraceEvents == nil {
		fail("%s: missing traceEvents array (not object-format Chrome trace JSON)", path)
	}
	var complete, instant, meta int
	threadNames := map[[2]int]string{} // (pid, tid) -> thread_name
	emTracks := map[[2]int]int{}       // (pid, tid) -> "X" event count
	for i, e := range tf.TraceEvents {
		if e.Ph == "" {
			fail("%s: event %d has no ph (phase) field", path, i)
		}
		if e.Pid == nil || e.Tid == nil {
			fail("%s: event %d (%q, ph=%s) lacks pid/tid", path, i, e.Name, e.Ph)
		}
		key := [2]int{*e.Pid, *e.Tid}
		switch e.Ph {
		case "X":
			if e.Ts == nil || e.Dur == nil {
				fail("%s: complete event %d (%q) lacks ts/dur", path, i, e.Name)
			}
			if *e.Dur < 0 {
				fail("%s: complete event %d (%q) has negative dur %v", path, i, e.Name, *e.Dur)
			}
			complete++
			emTracks[key]++
		case "i", "I":
			if e.Ts == nil {
				fail("%s: instant event %d (%q) lacks ts", path, i, e.Name)
			}
			instant++
		case "M":
			meta++
			if e.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				if err := json.Unmarshal(e.Args, &args); err != nil || args.Name == "" {
					fail("%s: thread_name metadata %d lacks args.name", path, i)
				}
				threadNames[key] = args.Name
			}
		}
	}
	if complete == 0 {
		fail("%s: no complete (ph=X) events — no entry-method spans recorded", path)
	}
	if len(threadNames) == 0 {
		fail("%s: no thread_name metadata — PE tracks would be unlabeled", path)
	}
	// Every track carrying X events must be a named PE track.
	for key := range emTracks {
		if _, ok := threadNames[key]; !ok {
			fail("%s: track pid=%d tid=%d has events but no thread_name", path, key[0], key[1])
		}
	}
	fmt.Printf("%s: OK — %d complete, %d instant, %d metadata events on %d named tracks\n",
		path, complete, instant, meta, len(threadNames))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
