// Dispatchbench measures the remote-invoke hot path across the dispatch
// ablation axes (DESIGN.md §codegen, EXPERIMENTS.md §dispatch): a flood of
// fine-grained invokes from node 0 to a chare on node 1, in three dispatch
// variants × two transports × two argument shapes. It writes the
// machine-readable results to BENCH_dispatch.json so the committed numbers
// can be regenerated with `make bench/dispatch`.
//
// Variants:
//
//   - dynamic:   CharmPy-style by-name dispatch, bindings disabled —
//     MethodByName + reflect.Call per message
//   - static:    Charm++-style method-id dispatch, bindings disabled —
//     precompiled method table, still reflect.Call
//   - generated: `charmgo gen` bindings attached — typed switch dispatch and
//     direct typed codecs, zero reflection on the hot path
//
// All three run the same chare (internal/bench.Ping) on the same wire
// format; Config.DisableGenerated is the only switch. Note the struct rows
// isolate dispatch plus typed-codec wiring, not the gob fallback: the flat
// codec registered by the package's charmgo_gen.go init serves the generic
// encoder too (that byte-identity is what lets bound and unbound peers
// interoperate). The gob-vs-flat codec gap is pinned separately by
// BenchmarkDispatchStructSerializedReflect and TestGeneratedCodecAllocGuard
// at the repository root (~200 vs 5 allocs per message).
//
//	go run ./cmd/dispatchbench                  # table + BENCH_dispatch.json
//	go run ./cmd/dispatchbench -msgs 30000 -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"charmgo"
	"charmgo/internal/bench"
	"charmgo/internal/core"
	"charmgo/internal/ser"
	"charmgo/internal/transport"
)

// result is one (variant, transport, argument-shape) measurement.
type result struct {
	Variant   string  `json:"variant"`   // "dynamic", "static", "generated"
	Transport string  `json:"transport"` // "mem" or "tcp"
	Arg       string  `json:"arg"`       // "int" or "struct"
	Msgs      int     `json:"msgs"`
	NsPerMsg  float64 `json:"ns_per_msg"`
	MsgsPerS  float64 `json:"msgs_per_sec"`
}

// report is the BENCH_dispatch.json document.
type report struct {
	Benchmark string   `json:"benchmark"`
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Results   []result `json:"results"`
}

type variant struct {
	name string
	cfg  core.Config
}

func variants() []variant {
	return []variant{
		{"dynamic", core.Config{PEs: 1, Dispatch: core.DynamicDispatch, DisableGenerated: true}},
		{"static", core.Config{PEs: 1, Dispatch: core.StaticDispatch, DisableGenerated: true}},
		{"generated", core.Config{PEs: 1, Dispatch: core.DynamicDispatch}},
	}
}

// pair builds the two-node transport pair for kind ("mem" or "tcp").
func pair(kind string, basePort int) ([]transport.Transport, error) {
	if kind == "mem" {
		nw := transport.NewMemNetwork(2)
		return []transport.Transport{nw.Endpoint(0), nw.Endpoint(1)}, nil
	}
	addrs := []string{
		fmt.Sprintf("127.0.0.1:%d", basePort),
		fmt.Sprintf("127.0.0.1:%d", basePort+1),
	}
	out := make([]transport.Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = transport.NewTCP(i, addrs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runOne floods msgs invokes of method/arg at a chare on node 1 and returns
// the sustained rate. The Count barrier at the end guarantees every message
// was dispatched before the clock stops.
func runOne(v variant, trKind string, basePort, msgs int, method string, arg any) (result, error) {
	trs, err := pair(trKind, basePort)
	if err != nil {
		return result{}, err
	}
	rts := make([]*core.Runtime, 2)
	for i := range rts {
		cfg := v.cfg
		cfg.Transport = trs[i]
		rts[i] = core.NewRuntime(cfg)
		rts[i].Register(&bench.Ping{})
	}
	res := result{Variant: v.name, Transport: trKind, Arg: "int", Msgs: msgs}
	if method == "PingVec" {
		res.Arg = "struct"
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rts[1].Start(nil)
	}()
	rts[0].Start(func(self *charmgo.Chare) {
		defer self.Exit()
		p := self.NewChare(&bench.Ping{}, charmgo.PE(1))
		w := self.CreateFuture()
		p.Call("Count", w) // warm up + synchronize
		w.Get()
		start := time.Now()
		for i := 0; i < msgs; i++ {
			p.Call(method, arg)
		}
		f := self.CreateFuture()
		p.Call("Count", f)
		if got := f.Get(); got != msgs {
			panic(fmt.Sprintf("dispatchbench: count = %v, want %d", got, msgs))
		}
		elapsed := time.Since(start)
		res.NsPerMsg = float64(elapsed.Nanoseconds()) / float64(msgs)
		res.MsgsPerS = float64(msgs) / elapsed.Seconds()
	})
	wg.Wait()
	for _, tr := range trs {
		tr.Close()
	}
	return res, nil
}

func main() {
	msgs := flag.Int("msgs", 20000, "messages per configuration")
	out := flag.String("o", "BENCH_dispatch.json", "output file ('' = stdout table only)")
	basePort := flag.Int("baseport", 42300, "first TCP port for the tcp transport pairs")
	flag.Parse()

	// The struct argument's gob fallback needs a registration, exactly as an
	// unbound application would have.
	ser.RegisterType(bench.Vec3{})

	rep := report{
		Benchmark: "remote invoke flood, node 0 -> node 1, dispatch ablation",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	fmt.Printf("%-10s %-5s %-7s %10s %12s %14s\n",
		"variant", "net", "arg", "msgs", "ns/msg", "msg/s")
	port := *basePort
	for _, trKind := range []string{"mem", "tcp"} {
		for _, shape := range []struct {
			method string
			arg    any
		}{{"Ping", 1}, {"PingVec", bench.Vec3{X: 1}}} {
			for _, v := range variants() {
				r, err := runOne(v, trKind, port, *msgs, shape.method, shape.arg)
				port += 2
				if err != nil {
					fmt.Fprintln(os.Stderr, "dispatchbench:", err)
					os.Exit(1)
				}
				rep.Results = append(rep.Results, r)
				fmt.Printf("%-10s %-5s %-7s %10d %12.1f %14.1f\n",
					r.Variant, r.Transport, r.Arg, r.Msgs, r.NsPerMsg, r.MsgsPerS)
			}
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dispatchbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dispatchbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
